exception Parse_error of string

type state = { mutable tokens : Lexer.located list }

let current st =
  match st.tokens with
  | t :: _ -> t
  | [] -> assert false (* the token list always ends with EOF *)

let fail st msg =
  let t = current st in
  raise
    (Parse_error
       (Printf.sprintf "%d:%d: %s (found %S)" t.Lexer.line t.Lexer.column msg
          (Lexer.token_to_string t.Lexer.token)))

let advance st =
  match st.tokens with
  | _ :: (_ :: _ as rest) -> st.tokens <- rest
  | _ -> ()

let expect st token =
  let t = current st in
  if t.Lexer.token = token then advance st
  else fail st (Printf.sprintf "expected %S" (Lexer.token_to_string token))

let accept st token =
  let t = current st in
  if t.Lexer.token = token then begin
    advance st;
    true
  end
  else false

let ident st =
  match (current st).Lexer.token with
  | Lexer.IDENT x ->
    advance st;
    x
  | _ -> fail st "expected identifier"

(* Left-associative binary level: parse [sub] separated by operators
   drawn from [table]. *)
let binary_level st ~sub ~table =
  let rec loop lhs =
    match List.assoc_opt (current st).Lexer.token table with
    | Some op ->
      advance st;
      let rhs = sub st in
      loop (Ast.Binop (op, lhs, rhs))
    | None -> lhs
  in
  loop (sub st)

let rec expr st = level_or st

and level_or st =
  binary_level st ~sub:level_xor ~table:[ (Lexer.PIPE, Ast.Or) ]

and level_xor st =
  binary_level st ~sub:level_and ~table:[ (Lexer.CARET, Ast.Xor) ]

and level_and st =
  binary_level st ~sub:level_cmp ~table:[ (Lexer.AMP, Ast.And) ]

and level_cmp st =
  (* Non-associative comparison. *)
  let lhs = level_shift st in
  let table = [ (Lexer.LT, Ast.Lt); (Lexer.GT, Ast.Gt); (Lexer.EQEQ, Ast.Eq) ]
  in
  match List.assoc_opt (current st).Lexer.token table with
  | Some op ->
    advance st;
    let rhs = level_shift st in
    Ast.Binop (op, lhs, rhs)
  | None -> lhs

and level_shift st =
  binary_level st ~sub:level_sum
    ~table:[ (Lexer.SHL, Ast.Shl); (Lexer.SHR, Ast.Shr) ]

and level_sum st =
  binary_level st ~sub:level_term
    ~table:[ (Lexer.PLUS, Ast.Add); (Lexer.MINUS, Ast.Sub) ]

and level_term st =
  binary_level st ~sub:level_unary
    ~table:[ (Lexer.STAR, Ast.Mul); (Lexer.SLASH, Ast.Div) ]

and level_unary st =
  if accept st Lexer.MINUS then Ast.Neg (level_unary st) else atom st

and atom st =
  match (current st).Lexer.token with
  | Lexer.INT n ->
    advance st;
    Ast.Int n
  | Lexer.IDENT x ->
    advance st;
    Ast.Var x
  | Lexer.LPAREN ->
    advance st;
    let e = expr st in
    expect st Lexer.RPAREN;
    e
  | _ -> fail st "expected expression"

let rec stmt st =
  if accept st Lexer.KW_REPEAT then begin
    let n =
      match (current st).Lexer.token with
      | Lexer.INT n ->
        advance st;
        n
      | _ -> fail st "expected repeat count"
    in
    Ast.Repeat (n, block st)
  end
  else if accept st Lexer.KW_IF then begin
    expect st Lexer.LPAREN;
    let cond = expr st in
    expect st Lexer.RPAREN;
    let then_block = block st in
    let else_block = if accept st Lexer.KW_ELSE then block st else [] in
    Ast.If (cond, then_block, else_block)
  end
  else begin
    let x = ident st in
    expect st Lexer.ASSIGN;
    let e = expr st in
    expect st Lexer.SEMI;
    Ast.Assign (x, e)
  end

and block st =
  expect st Lexer.LBRACE;
  let rec stmts acc =
    if accept st Lexer.RBRACE then List.rev acc else stmts (stmt st :: acc)
  in
  stmts []

let decl_list st =
  let rec loop acc =
    let x = ident st in
    if accept st Lexer.COMMA then loop (x :: acc)
    else begin
      expect st Lexer.SEMI;
      List.rev (x :: acc)
    end
  in
  loop []

let program st =
  let inputs = ref [] and outputs = ref [] in
  let rec decls () =
    if accept st Lexer.KW_INPUT then begin
      inputs := !inputs @ decl_list st;
      decls ()
    end
    else if accept st Lexer.KW_OUTPUT then begin
      outputs := !outputs @ decl_list st;
      decls ()
    end
  in
  decls ();
  let rec stmts acc =
    if (current st).Lexer.token = Lexer.EOF then List.rev acc
    else stmts (stmt st :: acc)
  in
  let body = stmts [] in
  { Ast.inputs = !inputs; outputs = !outputs; body }

let parse source =
  let st = { tokens = Lexer.tokenize source } in
  let p = program st in
  match Ast.validate p with
  | Ok () -> p
  | Error m -> raise (Parse_error m)

let parse_expr source =
  let st = { tokens = Lexer.tokenize source } in
  let e = expr st in
  (match (current st).Lexer.token with
  | Lexer.EOF -> ()
  | _ -> fail st "trailing input after expression");
  e
