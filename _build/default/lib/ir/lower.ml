module Graph = Dfg.Graph
module Op = Dfg.Op

let run (p : Ssa.program) =
  let g = Graph.create () in
  let values = Hashtbl.create 32 in (* versioned name -> vertex *)
  let constants = Hashtbl.create 8 in
  List.iter
    (fun x -> Hashtbl.replace values x (Graph.add_vertex g ~name:x (Op.Input x)))
    p.Ssa.inputs;
  let constant n =
    match Hashtbl.find_opt constants n with
    | Some v -> v
    | None ->
      let v = Graph.add_vertex g ~name:(Printf.sprintf "c%d" n) (Op.Const n) in
      Hashtbl.replace constants n v;
      v
  in
  let lookup x =
    match Hashtbl.find_opt values x with
    | Some v -> v
    | None -> invalid_arg ("Lower.run: undefined name " ^ x)
  in
  (* Attach operand edges; duplicate operands are routed through a Mov
     copy so each dependence is a distinct edge. *)
  let connect v operands =
    let _ =
      List.fold_left
        (fun seen operand ->
          let source =
            if List.mem operand seen then begin
              let copy =
                Graph.add_vertex g
                  ~name:(Graph.name g operand ^ "_cp")
                  Op.Mov
              in
              Graph.add_edge g operand copy;
              copy
            end
            else operand
          in
          Graph.add_edge g source v;
          source :: seen)
        [] operands
    in
    ()
  in
  let rec expr ?name e =
    match e with
    | Ast.Int n -> constant n
    | Ast.Var x -> lookup x
    | Ast.Neg inner ->
      let operand = expr inner in
      let v = Graph.add_vertex g ?name Op.Neg in
      connect v [ operand ];
      v
    | Ast.Binop (op, a, b) ->
      let va = expr a in
      let vb = expr b in
      let v = Graph.add_vertex g ?name (Ast.op_of_binop op) in
      connect v [ va; vb ];
      v
  in
  List.iter
    (fun s ->
      match s with
      | Ssa.Def (x, e) ->
        let v =
          match e with
          | Ast.Var y ->
            (* Pure renaming: alias, no operation. *)
            lookup y
          | Ast.Int n -> constant n
          | e -> expr ~name:x e
        in
        Hashtbl.replace values x v
      | Ssa.Phi { target; cond; if_true; if_false } ->
        let v = Graph.add_vertex g ~name:target Op.Select in
        connect v [ lookup cond; lookup if_true; lookup if_false ];
        Hashtbl.replace values target v)
    p.Ssa.body;
  List.iter
    (fun (o, x) ->
      let marker = Graph.add_vertex g ~name:o (Op.Output o) in
      Graph.add_edge g (lookup x) marker)
    p.Ssa.outputs;
  g

let of_source source = run (Ssa.of_ast (Parser.parse source))
