(** Recursive-descent parser for the behavioral language.

    Grammar (standard C precedence, tightest first):
    {v
      program := decl* stmt*
      decl    := ("input" | "output") ident ("," ident)* ";"
      stmt    := ident "=" expr ";"
               | "if" "(" expr ")" block ["else" block]
               | "repeat" int block
      block   := "{" stmt* "}"
      expr    := or
      or      := xor ("|" xor)*
      xor     := and ("^" and)*
      and     := cmp ("&" cmp)*
      cmp     := shift (("<" | ">" | "==") shift)?
      shift   := sum (("<<" | ">>") sum)*
      sum     := term (("+" | "-") term)*
      term    := unary (("*" | "/") unary)*
      unary   := "-" unary | atom
      atom    := int | ident | "(" expr ")"
    v} *)

exception Parse_error of string
(** Message includes line:column and the offending token. *)

val parse : string -> Ast.program
(** Lex + parse + {!Ast.validate}.
    @raise Parse_error or {!Lexer.Lex_error} on bad input. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression — convenient for tests. *)
