type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Lt
  | Gt
  | Eq
  | And
  | Or
  | Xor
  | Shl
  | Shr

type expr =
  | Int of int
  | Var of string
  | Neg of expr
  | Binop of binop * expr * expr

type stmt =
  | Assign of string * expr
  | If of expr * stmt list * stmt list
  | Repeat of int * stmt list

type program = {
  inputs : string list;
  outputs : string list;
  body : stmt list;
}

let op_of_binop : binop -> Dfg.Op.t = function
  | Add -> Dfg.Op.Add
  | Sub -> Dfg.Op.Sub
  | Mul -> Dfg.Op.Mul
  | Div -> Dfg.Op.Div
  | Lt -> Dfg.Op.Lt
  | Gt -> Dfg.Op.Gt
  | Eq -> Dfg.Op.Eq
  | And -> Dfg.Op.And
  | Or -> Dfg.Op.Or
  | Xor -> Dfg.Op.Xor
  | Shl -> Dfg.Op.Shl
  | Shr -> Dfg.Op.Shr

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Lt -> "<"
  | Gt -> ">"
  | Eq -> "=="
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"

let assigned_variables body =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let note x =
    if not (Hashtbl.mem seen x) then begin
      Hashtbl.replace seen x ();
      order := x :: !order
    end
  in
  let rec walk = function
    | Assign (x, _) -> note x
    | If (_, then_block, else_block) ->
      List.iter walk then_block;
      List.iter walk else_block
    | Repeat (_, body) -> List.iter walk body
  in
  List.iter walk body;
  List.rev !order

let rec free_vars = function
  | Int _ -> []
  | Var x -> [ x ]
  | Neg e -> free_vars e
  | Binop (_, a, b) -> free_vars a @ free_vars b

let validate program =
  let error fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let dup l =
    let rec check seen = function
      | [] -> None
      | x :: rest -> if List.mem x seen then Some x else check (x :: seen) rest
    in
    check [] l
  in
  match dup (program.inputs @ program.outputs) with
  | Some x -> error "duplicate declaration of %s" x
  | None ->
    (* Walk statements tracking definitely-defined variables. *)
    let exception Bad of string in
    let check_expr defined e =
      List.iter
        (fun x ->
          if not (List.mem x defined) then
            raise (Bad (Printf.sprintf "%s read before assignment" x)))
        (free_vars e)
    in
    let rec walk defined = function
      | [] -> defined
      | Assign (x, e) :: rest ->
        if List.mem x program.inputs then
          raise (Bad (Printf.sprintf "assignment to input %s" x));
        check_expr defined e;
        walk (if List.mem x defined then defined else x :: defined) rest
      | If (cond, then_block, else_block) :: rest ->
        check_expr defined cond;
        let d1 = walk defined then_block in
        let d2 = walk defined else_block in
        let both = List.filter (fun x -> List.mem x d2) d1 in
        walk both rest
      | Repeat (n, body) :: rest ->
        if n < 0 then raise (Bad "repeat with a negative count");
        (* the first iteration must be well-defined on its own; with
           n = 0 nothing new is defined *)
        let after = walk defined body in
        walk (if n > 0 then after else defined) rest
    in
    (try
       let defined = walk program.inputs program.body in
       List.iter
         (fun o ->
           if not (List.mem o defined) then
             raise (Bad (Printf.sprintf "output %s never assigned" o)))
         program.outputs;
       Ok ()
     with Bad m -> Error m)

let rec pp_expr fmt = function
  | Int n -> Format.pp_print_int fmt n
  | Var x -> Format.pp_print_string fmt x
  | Neg e -> Format.fprintf fmt "-%a" pp_atom e
  | Binop (op, a, b) ->
    Format.fprintf fmt "%a %s %a" pp_atom a (binop_symbol op) pp_atom b

and pp_atom fmt e =
  match e with
  | Int _ | Var _ -> pp_expr fmt e
  | Neg _ | Binop _ -> Format.fprintf fmt "(%a)" pp_expr e

let rec pp_stmt fmt = function
  | Assign (x, e) -> Format.fprintf fmt "@[<h>%s = %a;@]" x pp_expr e
  | If (c, t, e) ->
    Format.fprintf fmt "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}"
      pp_expr c pp_block t pp_block e
  | Repeat (n, body) ->
    Format.fprintf fmt "@[<v 2>repeat %d {@,%a@]@,}" n pp_block body

and pp_block fmt stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt fmt stmts

let pp_program fmt p =
  Format.fprintf fmt "@[<v>input %s;@,output %s;@,%a@]"
    (String.concat ", " p.inputs)
    (String.concat ", " p.outputs)
    pp_block p.body
