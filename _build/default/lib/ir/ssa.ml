type stmt =
  | Def of string * Ast.expr
  | Phi of { target : string; cond : string; if_true : string; if_false : string }

type program = {
  inputs : string list;
  outputs : (string * string) list;
  body : stmt list;
}

type env = (string * string) list (* source variable -> versioned name *)

let of_ast (ast : Ast.program) =
  (match Ast.validate ast with
  | Ok () -> ()
  | Error m -> invalid_arg ("Ssa.of_ast: " ^ m));
  let counters = Hashtbl.create 16 in
  let fresh base =
    let n =
      match Hashtbl.find_opt counters base with Some n -> n + 1 | None -> 1
    in
    Hashtbl.replace counters base n;
    Printf.sprintf "%s$%d" base n
  in
  let body = ref [] in
  let emit s = body := s :: !body in
  let rec rename (env : env) = function
    | Ast.Int n -> Ast.Int n
    | Ast.Var x ->
      (match List.assoc_opt x env with
      | Some v -> Ast.Var v
      | None -> invalid_arg ("Ssa.of_ast: undefined variable " ^ x))
    | Ast.Neg e -> Ast.Neg (rename env e)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, rename env a, rename env b)
  in
  (* Returns the environment after the block. *)
  let rec walk (env : env) = function
    | [] -> env
    | Ast.Assign (x, e) :: rest ->
      let e' = rename env e in
      let v = fresh x in
      emit (Def (v, e'));
      walk ((x, v) :: List.remove_assoc x env) rest
    | Ast.If (cond, then_block, else_block) :: rest ->
      let cond' = rename env cond in
      (* Name the condition so phis can reference it. *)
      let cond_name =
        match cond' with
        | Ast.Var v -> v
        | _ ->
          let v = fresh "cond" in
          emit (Def (v, cond'));
          v
      in
      let env_t = walk env then_block in
      let env_f = walk env else_block in
      let joined =
        List.fold_left
          (fun acc x ->
            match List.assoc_opt x env_t, List.assoc_opt x env_f with
            | Some vt, Some vf when vt <> vf ->
              let v = fresh x in
              emit (Phi { target = v; cond = cond_name; if_true = vt;
                          if_false = vf });
              (x, v) :: acc
            | Some v, Some _ -> (x, v) :: acc
            | _ -> acc (* defined in only one branch: unusable later *))
          []
          (List.sort_uniq compare (List.map fst env_t @ List.map fst env_f))
      in
      walk joined rest
    | Ast.Repeat (n, body) :: rest ->
      (* full unrolling: the scheduler sees one super-block *)
      let env = ref env in
      for _ = 1 to n do
        env := walk !env body
      done;
      walk !env rest
  in
  let initial = List.map (fun x -> (x, x)) ast.Ast.inputs in
  let final_env = walk initial ast.Ast.body in
  let outputs =
    List.map
      (fun o ->
        match List.assoc_opt o final_env with
        | Some v -> (o, v)
        | None -> invalid_arg ("Ssa.of_ast: output " ^ o ^ " unassigned"))
      ast.Ast.outputs
  in
  { inputs = ast.Ast.inputs; outputs; body = List.rev !body }

let n_phis p =
  List.length (List.filter (function Phi _ -> true | Def _ -> false) p.body)

let defined_names p =
  List.map (function Def (x, _) -> x | Phi { target; _ } -> target) p.body

let pp fmt p =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun s ->
      match s with
      | Def (x, e) -> Format.fprintf fmt "%s = %a@," x Ast.pp_expr e
      | Phi { target; cond; if_true; if_false } ->
        Format.fprintf fmt "%s = phi(%s, %s, %s)@," target cond if_true
          if_false)
    p.body;
  List.iter
    (fun (o, v) -> Format.fprintf fmt "output %s = %s@," o v)
    p.outputs;
  Format.fprintf fmt "@]"
