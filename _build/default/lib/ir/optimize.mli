(** Classic scalar optimisations over SSA: constant folding, copy
    propagation and dead-code elimination. Useful on unrolled [repeat]
    bodies, where induction arithmetic folds away before scheduling. *)

val constant_fold : Ssa.program -> Ssa.program
(** Folds operations whose operands are all known, propagates the
    results (and copies) forward, and resolves phis with a constant
    condition. Division by zero is left unfolded only in the sense
    that it folds to 0, matching {!Dfg.Op.eval}. *)

val dead_code : Ssa.program -> Ssa.program
(** Drops definitions no output transitively reads. *)

val run : Ssa.program -> Ssa.program
(** {!constant_fold} then {!dead_code}, iterated to a fixpoint. *)

val n_statements : Ssa.program -> int
