(** Abstract syntax of the tiny behavioral language accepted by the
    front end.

    A behavior is one super-block: integer assignments plus
    if/else conditionals (which the SSA pass if-converts into phi
    selections — there are no loops; HLS schedulers operate on the loop
    body, not the loop). Example:

    {v
      input x, y, u, dx, a;
      output xl, ul, yl, c;
      xl = x + dx;
      ul = u - 3*x*u*dx - 3*y*dx;
      yl = y + u*dx;
      c  = xl < a;
    v} *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Lt
  | Gt
  | Eq
  | And
  | Or
  | Xor
  | Shl
  | Shr

type expr =
  | Int of int
  | Var of string
  | Neg of expr
  | Binop of binop * expr * expr

type stmt =
  | Assign of string * expr
  | If of expr * stmt list * stmt list
      (** [If (cond, then_block, else_block)] *)
  | Repeat of int * stmt list
      (** [Repeat (n, body)]: the body unrolled [n] times — HLS
          schedulers work on the (super-)block, so bounded loops are
          flattened by the SSA pass *)

type program = {
  inputs : string list;
  outputs : string list;
  body : stmt list;
}

val op_of_binop : binop -> Dfg.Op.t
val binop_symbol : binop -> string

val assigned_variables : stmt list -> string list
(** Every variable assigned anywhere in the block, without duplicates,
    in first-assignment order. *)

val validate : program -> (unit, string) result
(** Static checks: no assignment to an input, every output assigned,
    every variable read after it is defined (inputs count as defined;
    conditionally-assigned variables must be covered by both branches
    or pre-defined), no duplicate declarations. *)

val pp_expr : Format.formatter -> expr -> unit
val pp_program : Format.formatter -> program -> unit
