type env = (string * int) list

let rec eval_expr e env =
  match e with
  | Ast.Int n -> n
  | Ast.Var x -> List.assoc x env
  | Ast.Neg e -> -eval_expr e env
  | Ast.Binop (op, a, b) ->
    Dfg.Op.eval (Ast.op_of_binop op) [ eval_expr a env; eval_expr b env ]

let run (p : Ast.program) env =
  let rec walk env = function
    | [] -> env
    | Ast.Assign (x, e) :: rest ->
      walk ((x, eval_expr e env) :: List.remove_assoc x env) rest
    | Ast.If (cond, then_block, else_block) :: rest ->
      let branch =
        if eval_expr cond env <> 0 then then_block else else_block
      in
      walk (walk env branch) rest
    | Ast.Repeat (n, body) :: rest ->
      let env = ref env in
      for _ = 1 to n do
        env := walk !env body
      done;
      walk !env rest
  in
  let final = walk env p.Ast.body in
  List.map (fun o -> (o, List.assoc o final)) p.Ast.outputs

let run_ssa (p : Ssa.program) env =
  let values = Hashtbl.create 32 in
  List.iter (fun (x, v) -> Hashtbl.replace values x v) env;
  let lookup x =
    match Hashtbl.find_opt values x with
    | Some v -> v
    | None -> raise Not_found
  in
  let rec eval = function
    | Ast.Int n -> n
    | Ast.Var x -> lookup x
    | Ast.Neg e -> -eval e
    | Ast.Binop (op, a, b) ->
      Dfg.Op.eval (Ast.op_of_binop op) [ eval a; eval b ]
  in
  List.iter
    (fun s ->
      match s with
      | Ssa.Def (x, e) -> Hashtbl.replace values x (eval e)
      | Ssa.Phi { target; cond; if_true; if_false } ->
        let v = if lookup cond <> 0 then lookup if_true else lookup if_false in
        Hashtbl.replace values target v)
    p.Ssa.body;
  List.map (fun (o, v) -> (o, lookup v)) p.Ssa.outputs
