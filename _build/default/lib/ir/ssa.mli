(** Static single assignment conversion with if-conversion.

    Every assignment gets a fresh versioned name ([x$1], [x$2], …;
    inputs are version 0 and keep their plain name). Conditionals are
    flattened: both branches are computed speculatively and joined by
    explicit phi statements — Section 1 of the paper points at exactly
    these phi nodes as operations whose final form (move or nothing) is
    only known after register allocation. *)

type stmt =
  | Def of string * Ast.expr
      (** target and an expression over versioned names *)
  | Phi of { target : string; cond : string; if_true : string; if_false : string }
      (** [target = cond ? if_true : if_false] *)

type program = {
  inputs : string list;
  outputs : (string * string) list;
      (** declared output name -> versioned name holding its value *)
  body : stmt list;  (** in dependence order *)
}

val of_ast : Ast.program -> program
(** @raise Invalid_argument if the program does not {!Ast.validate}. *)

val n_phis : program -> int

val defined_names : program -> string list
(** Every versioned name defined by the body, in order — each exactly
    once (the SSA property, asserted by tests). *)

val pp : Format.formatter -> program -> unit
