(** Hand-written lexer for the behavioral language. *)

type token =
  | INT of int
  | IDENT of string
  | KW_INPUT
  | KW_OUTPUT
  | KW_IF
  | KW_ELSE
  | KW_REPEAT
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | LT
  | GT
  | EQEQ
  | AMP
  | PIPE
  | CARET
  | SHL
  | SHR
  | ASSIGN
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | EOF

type located = { token : token; line : int; column : int }

exception Lex_error of string
(** Message includes line:column. *)

val tokenize : string -> located list
(** Whole-input tokenisation. Comments run from ['#'] or ["//"] to end
    of line. @raise Lex_error on an unexpected character. *)

val token_to_string : token -> string
