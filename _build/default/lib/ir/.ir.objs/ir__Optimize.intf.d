lib/ir/optimize.mli: Ssa
