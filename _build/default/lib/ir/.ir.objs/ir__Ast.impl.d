lib/ir/ast.ml: Dfg Format Hashtbl List Printf String
