lib/ir/ssa.ml: Ast Format Hashtbl List Printf
