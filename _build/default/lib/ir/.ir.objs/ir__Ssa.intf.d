lib/ir/ssa.mli: Ast Format
