lib/ir/ast.mli: Dfg Format
