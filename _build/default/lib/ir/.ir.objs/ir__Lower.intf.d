lib/ir/lower.mli: Dfg Ssa
