lib/ir/interp.ml: Ast Dfg Hashtbl List Ssa
