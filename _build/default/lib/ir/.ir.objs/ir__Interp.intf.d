lib/ir/interp.mli: Ast Ssa
