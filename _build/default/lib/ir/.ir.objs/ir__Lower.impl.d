lib/ir/lower.ml: Ast Dfg Hashtbl List Parser Printf Ssa
