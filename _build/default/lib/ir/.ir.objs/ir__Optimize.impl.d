lib/ir/optimize.ml: Ast Dfg Hashtbl List Option Ssa
