lib/ir/lexer.mli:
