lib/ir/parser.ml: Ast Lexer List Printf
