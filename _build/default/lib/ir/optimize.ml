type binding =
  | Known of int
  | Alias of string

let n_statements (p : Ssa.program) = List.length p.Ssa.body

(* Resolve a name through the alias/constant environment. *)
let resolve env name =
  match Hashtbl.find_opt env name with
  | Some (Alias target) -> target
  | Some (Known _) | None -> name

let substitute env e =
  let rec go = function
    | Ast.Int n -> Ast.Int n
    | Ast.Var x ->
      (match Hashtbl.find_opt env x with
      | Some (Known n) -> Ast.Int n
      | Some (Alias target) -> Ast.Var (resolve env target)
      | None -> Ast.Var x)
    | Ast.Neg inner -> Ast.Neg (go inner)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, go a, go b)
  in
  go e

let rec try_eval = function
  | Ast.Int n -> Some n
  | Ast.Var _ -> None
  | Ast.Neg e -> Option.map (fun n -> -n) (try_eval e)
  | Ast.Binop (op, a, b) ->
    (match try_eval a, try_eval b with
    | Some x, Some y -> Some (Dfg.Op.eval (Ast.op_of_binop op) [ x; y ])
    | _ -> None)

let constant_fold (p : Ssa.program) =
  let env = Hashtbl.create 32 in
  let body =
    List.filter_map
      (fun stmt ->
        match stmt with
        | Ssa.Def (x, e) ->
          let e' = substitute env e in
          (match try_eval e' with
          | Some n ->
            Hashtbl.replace env x (Known n);
            Some (Ssa.Def (x, Ast.Int n))
          | None ->
            (match e' with
            | Ast.Var y ->
              (* pure copy: later uses read the source directly *)
              Hashtbl.replace env x (Alias y);
              Some (Ssa.Def (x, e'))
            | _ -> Some (Ssa.Def (x, e'))))
        | Ssa.Phi { target; cond; if_true; if_false } ->
          let cond = resolve env cond in
          let if_true = resolve env if_true in
          let if_false = resolve env if_false in
          (match Hashtbl.find_opt env cond with
          | Some (Known c) ->
            let chosen = if c <> 0 then if_true else if_false in
            (match Hashtbl.find_opt env chosen with
            | Some (Known n) ->
              Hashtbl.replace env target (Known n);
              Some (Ssa.Def (target, Ast.Int n))
            | _ ->
              Hashtbl.replace env target (Alias chosen);
              Some (Ssa.Def (target, Ast.Var chosen)))
          | _ -> Some (Ssa.Phi { target; cond; if_true; if_false })))
      p.Ssa.body
  in
  let outputs =
    List.map
      (fun (o, name) ->
        match Hashtbl.find_opt env name with
        | Some (Alias target) -> (o, resolve env target)
        | _ -> (o, name))
      p.Ssa.outputs
  in
  { p with Ssa.body = body; outputs }

let dead_code (p : Ssa.program) =
  let needed = Hashtbl.create 32 in
  List.iter (fun (_, name) -> Hashtbl.replace needed name ()) p.Ssa.outputs;
  let rec expr_vars = function
    | Ast.Int _ -> []
    | Ast.Var x -> [ x ]
    | Ast.Neg e -> expr_vars e
    | Ast.Binop (_, a, b) -> expr_vars a @ expr_vars b
  in
  let keep =
    List.rev
      (List.filter
         (fun stmt ->
           match stmt with
           | Ssa.Def (x, e) ->
             if Hashtbl.mem needed x then begin
               List.iter (fun v -> Hashtbl.replace needed v ()) (expr_vars e);
               true
             end
             else false
           | Ssa.Phi { target; cond; if_true; if_false } ->
             if Hashtbl.mem needed target then begin
               List.iter (fun v -> Hashtbl.replace needed v ())
                 [ cond; if_true; if_false ];
               true
             end
             else false)
         (List.rev p.Ssa.body))
  in
  { p with Ssa.body = keep }

let run p =
  let rec fixpoint p n =
    if n = 0 then p
    else begin
      let next = dead_code (constant_fold p) in
      if n_statements next = n_statements p then next
      else fixpoint next (n - 1)
    end
  in
  fixpoint p 8
