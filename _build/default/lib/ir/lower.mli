(** Lowering SSA to a dataflow precedence graph.

    Every SSA definition becomes an operation vertex, inputs become
    [Op.Input] vertices, constants are shared [Op.Const] vertices and
    outputs get [Op.Output] markers. Phi statements become three-operand
    [Op.Select] vertices (full if-conversion). When an operation uses
    the same value for both operands ([x * x]), the second use goes
    through an [Op.Mov] copy, because precedence graphs carry at most
    one edge per vertex pair. *)

val run : Ssa.program -> Dfg.Graph.t
(** The resulting graph is a DAG; {!Dfg.Eval.run} on it agrees with
    {!Interp.run_ssa} (integration-tested). *)

val of_source : string -> Dfg.Graph.t
(** Parse, SSA-convert and lower in one step. *)
