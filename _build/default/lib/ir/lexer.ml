type token =
  | INT of int
  | IDENT of string
  | KW_INPUT
  | KW_OUTPUT
  | KW_IF
  | KW_ELSE
  | KW_REPEAT
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | LT
  | GT
  | EQEQ
  | AMP
  | PIPE
  | CARET
  | SHL
  | SHR
  | ASSIGN
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | EOF

type located = { token : token; line : int; column : int }

exception Lex_error of string

let token_to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | KW_INPUT -> "input"
  | KW_OUTPUT -> "output"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_REPEAT -> "repeat"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | LT -> "<"
  | GT -> ">"
  | EQEQ -> "=="
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | SHL -> "<<"
  | SHR -> ">>"
  | ASSIGN -> "="
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | COMMA -> ","
  | SEMI -> ";"
  | EOF -> "<eof>"

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let keyword = function
  | "input" -> Some KW_INPUT
  | "output" -> Some KW_OUTPUT
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "repeat" -> Some KW_REPEAT
  | _ -> None

let tokenize source =
  let n = String.length source in
  let tokens = ref [] in
  let line = ref 1 and column = ref 1 in
  let i = ref 0 in
  let peek offset = if !i + offset < n then Some source.[!i + offset] else None in
  let advance () =
    (match source.[!i] with
    | '\n' ->
      incr line;
      column := 1
    | _ -> incr column);
    incr i
  in
  let emit ?(width = 1) token =
    tokens := { token; line = !line; column = !column } :: !tokens;
    for _ = 1 to width do
      advance ()
    done
  in
  let fail msg =
    raise (Lex_error (Printf.sprintf "%d:%d: %s" !line !column msg))
  in
  while !i < n do
    let c = source.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '#' || (c = '/' && peek 1 = Some '/') then begin
      while !i < n && source.[!i] <> '\n' do
        advance ()
      done
    end
    else if is_digit c then begin
      let start = !i in
      let start_line = !line and start_column = !column in
      while !i < n && is_digit source.[!i] do
        advance ()
      done;
      let text = String.sub source start (!i - start) in
      tokens :=
        { token = INT (int_of_string text); line = start_line;
          column = start_column }
        :: !tokens
    end
    else if is_ident_start c then begin
      let start = !i in
      let start_line = !line and start_column = !column in
      while !i < n && is_ident source.[!i] do
        advance ()
      done;
      let text = String.sub source start (!i - start) in
      let token =
        match keyword text with Some k -> k | None -> IDENT text
      in
      tokens := { token; line = start_line; column = start_column } :: !tokens
    end
    else
      match c, peek 1 with
      | '=', Some '=' -> emit ~width:2 EQEQ
      | '<', Some '<' -> emit ~width:2 SHL
      | '>', Some '>' -> emit ~width:2 SHR
      | '=', _ -> emit ASSIGN
      | '+', _ -> emit PLUS
      | '-', _ -> emit MINUS
      | '*', _ -> emit STAR
      | '/', _ -> emit SLASH
      | '<', _ -> emit LT
      | '>', _ -> emit GT
      | '&', _ -> emit AMP
      | '|', _ -> emit PIPE
      | '^', _ -> emit CARET
      | '(', _ -> emit LPAREN
      | ')', _ -> emit RPAREN
      | '{', _ -> emit LBRACE
      | '}', _ -> emit RBRACE
      | ',', _ -> emit COMMA
      | ';', _ -> emit SEMI
      | c, _ -> fail (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev ({ token = EOF; line = !line; column = !column } :: !tokens)
