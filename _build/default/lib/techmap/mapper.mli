open Import

(** Resource-constrained technology mapping with the threaded scheduler
    as the evaluation kernel.

    Each candidate fusion is scored by what it does to the {e schedule}:
    the mapper rebuilds the threaded scheduling state with and without
    the candidate and keeps it only when the resulting diameter does not
    get worse (ties favour fusing — fewer operations, fewer transfers).
    This is exactly the paper's conclusion: an online scheduler cheap
    enough to be "embedded as a kernel into other algorithms which need
    to take scheduling effect into account". *)

type result = {
  mapped : Graph.t;  (** the graph after fusion *)
  accepted : Cover.match_ list;
  vertex_map : (Graph.vertex * Graph.vertex) list;
      (** original vertex -> mapped vertex, for every vertex not fused
          away (a match root maps to its fused cell) *)
}

val apply_matches : Graph.t -> Cover.match_ list -> result
(** Build the mapped graph for a set of non-overlapping matches.
    @raise Invalid_argument if two matches share a vertex. *)

val greedy : ?library:Cell.t list -> Graph.t -> result
(** Structure-only baseline: accept matches in topological order of
    their roots whenever they do not overlap earlier acceptances. *)

val schedule_driven :
  ?library:Cell.t list -> resources:Resources.t -> Graph.t -> result
(** The kernel-driven mapper: a candidate is accepted only if the
    threaded schedule of the resulting graph is no longer than without
    it. Polynomial: one threaded scheduling run per candidate. *)

val csteps : resources:Resources.t -> result -> int
(** Threaded-schedule length of the mapped design. *)
