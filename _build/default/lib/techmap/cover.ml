open Import

type match_ = {
  root : Graph.vertex;
  cell : Cell.t;
  operands : Graph.vertex list;
  fused_away : Graph.vertex list;
}

(* Walk pattern and vertex together, collecting leaves (left to right)
   and internal vertices. Returns None on any mismatch. *)
let match_at g cell root =
  let exception No in
  let leaves = ref [] in
  let internal = ref [] in
  let rec walk ~is_root pattern v =
    match pattern with
    | Cell.Any -> leaves := v :: !leaves
    | Cell.Node (op, subs) ->
      if not (Op.equal (Graph.op g v) op) then raise No;
      let operands = Graph.preds g v in
      if List.length operands <> List.length subs then raise No;
      if not is_root then begin
        (* the value must die into the cell *)
        if Graph.out_degree g v <> 1 then raise No;
        internal := v :: !internal
      end;
      List.iter2 (fun sub operand -> walk ~is_root:false sub operand) subs
        operands
  in
  match walk ~is_root:true cell.Cell.pattern root with
  | () ->
    let leaves = List.rev !leaves in
    (* Permute leaves into the fused op's operand order. *)
    let n = List.length leaves in
    let operands = Array.make n (-1) in
    List.iteri
      (fun i leaf -> operands.(List.nth cell.Cell.operand_order i) <- leaf)
      leaves;
    Some
      {
        root;
        cell;
        operands = Array.to_list operands;
        fused_away = List.rev !internal;
      }
  | exception No -> None

let all_matches ?(library = Cell.default_library) g =
  List.concat_map
    (fun v -> List.filter_map (fun cell -> match_at g cell v) library)
    (Topo.sort g)
