open Import

(** Cell library for resource-constrained technology mapping.

    The paper's outlook: with an online scheduler whose state can be
    cheaply copied and queried, "polynomial time algorithms can be
    constructed for … resource constrained technology mapping". A cell
    fuses a small tree of operations into one vertex executed on one
    unit; fusing trades operations for delay under the scheduler's
    eyes. *)

type pattern =
  | Any  (** matches any producer — becomes an operand of the cell *)
  | Node of Op.t * pattern list
      (** an operation whose operands match the sub-patterns, in operand
          order; non-root nodes must be single-consumer so they can be
          fused away *)

type t = {
  name : string;
  pattern : pattern;
  fused : Op.t;  (** the op a mapped vertex carries, e.g. [Op.Mac] *)
  operand_order : int list;
      (** permutation mapping left-to-right pattern leaves to the fused
          op's operand positions: leaf [i] becomes operand
          [List.nth operand_order i] *)
  delay : int;
}

val mac : t
(** [a*b + c] as one multiplier-class cell of delay 2 — the addition is
    absorbed into the multiplier's second cycle. *)

val mac_commuted : t
(** [c + a*b], same cell. *)

val msu : t
(** [c - a*b]. *)

val default_library : t list

val n_leaves : pattern -> int

val validate : t -> (unit, string) result
(** [operand_order] is a permutation of the leaves, the root is a
    [Node], the fused op's arity equals the leaf count. *)
