open Import

type result = {
  mapped : Graph.t;
  accepted : Cover.match_ list;
  vertex_map : (Graph.vertex * Graph.vertex) list;
}

let footprint (m : Cover.match_) = m.root :: m.fused_away

let apply_matches g matches =
  (* Overlap check. *)
  let used = Hashtbl.create 16 in
  List.iter
    (fun m ->
      List.iter
        (fun v ->
          if Hashtbl.mem used v then
            invalid_arg "Mapper.apply_matches: overlapping matches";
          Hashtbl.replace used v ())
        (footprint m))
    matches;
  let root_match = Hashtbl.create 16 in
  let fused_away = Hashtbl.create 16 in
  List.iter
    (fun (m : Cover.match_) ->
      Hashtbl.replace root_match m.root m;
      List.iter (fun v -> Hashtbl.replace fused_away v ()) m.fused_away)
    matches;
  let mapped = Graph.create () in
  let vmap = Hashtbl.create 64 in
  (* Pass 1: vertices. *)
  Graph.iter_vertices
    (fun v ->
      if not (Hashtbl.mem fused_away v) then begin
        let id =
          match Hashtbl.find_opt root_match v with
          | Some m ->
            Graph.add_vertex mapped ~delay:m.cell.Cell.delay
              ~name:(Graph.name g v ^ "_" ^ m.cell.Cell.name)
              m.cell.Cell.fused
          | None ->
            Graph.add_vertex mapped ~delay:(Graph.delay g v)
              ~name:(Graph.name g v) (Graph.op g v)
        in
        Hashtbl.replace vmap v id
      end)
    g;
  let resolve v =
    match Hashtbl.find_opt vmap v with
    | Some id -> id
    | None ->
      invalid_arg
        "Mapper.apply_matches: a fused-away value is read outside its cell"
  in
  (* Attach operand edges, copying a value through a Mov when the same
     producer feeds two operand slots (graphs carry one edge per pair). *)
  let connect target operands =
    let _ =
      List.fold_left
        (fun seen operand ->
          let source =
            if List.mem operand seen then begin
              let copy =
                Graph.add_vertex mapped
                  ~name:(Graph.name mapped operand ^ "_cp")
                  Op.Mov
              in
              Graph.add_edge mapped operand copy;
              copy
            end
            else operand
          in
          Graph.add_edge mapped source target;
          source :: seen)
        [] operands
    in
    ()
  in
  (* Pass 2: edges. *)
  Graph.iter_vertices
    (fun v ->
      if not (Hashtbl.mem fused_away v) then begin
        let target = resolve v in
        match Hashtbl.find_opt root_match v with
        | Some m -> connect target (List.map resolve m.Cover.operands)
        | None -> connect target (List.map resolve (Graph.preds g v))
      end)
    g;
  {
    mapped;
    accepted = matches;
    vertex_map =
      Hashtbl.fold (fun v id acc -> (v, id) :: acc) vmap []
      |> List.sort compare;
  }

let greedy ?library g =
  let used = Hashtbl.create 16 in
  let accepted =
    List.filter
      (fun m ->
        let fp = footprint m in
        if List.exists (Hashtbl.mem used) fp then false
        else begin
          List.iter (fun v -> Hashtbl.replace used v ()) fp;
          true
        end)
      (Cover.all_matches ?library g)
  in
  apply_matches g accepted

let csteps ~resources result =
  Schedule.length (Scheduler.run_to_schedule ~resources result.mapped)

let schedule_driven ?library ~resources g =
  let candidates = Cover.all_matches ?library g in
  let evaluate matches =
    csteps ~resources (apply_matches g matches)
  in
  let best_matches, _ =
    List.fold_left
      (fun (accepted, best) candidate ->
        let overlaps =
          List.exists
            (fun m ->
              List.exists
                (fun v -> List.mem v (footprint m))
                (footprint candidate))
            accepted
        in
        if overlaps then (accepted, best)
        else begin
          let trial = accepted @ [ candidate ] in
          let score = evaluate trial in
          (* ties favour fusing: fewer ops, fewer transfers *)
          if score <= best then (trial, score) else (accepted, best)
        end)
      ([], evaluate []) candidates
  in
  apply_matches g best_matches
