open Import

type pattern =
  | Any
  | Node of Op.t * pattern list

type t = {
  name : string;
  pattern : pattern;
  fused : Op.t;
  operand_order : int list;
  delay : int;
}

let rec n_leaves = function
  | Any -> 1
  | Node (_, subs) -> List.fold_left (fun acc p -> acc + n_leaves p) 0 subs

let mac =
  {
    name = "mac";
    pattern = Node (Op.Add, [ Node (Op.Mul, [ Any; Any ]); Any ]);
    fused = Op.Mac;
    operand_order = [ 0; 1; 2 ]; (* leaves a b c -> mac(a, b, c) *)
    delay = 2;
  }

let mac_commuted =
  {
    name = "mac'";
    pattern = Node (Op.Add, [ Any; Node (Op.Mul, [ Any; Any ]) ]);
    fused = Op.Mac;
    operand_order = [ 2; 0; 1 ]; (* leaves c a b -> mac(a, b, c) *)
    delay = 2;
  }

let msu =
  {
    name = "msu";
    pattern = Node (Op.Sub, [ Any; Node (Op.Mul, [ Any; Any ]) ]);
    fused = Op.Msu;
    operand_order = [ 2; 0; 1 ]; (* leaves c a b -> msu(a, b, c) = c - a*b *)
    delay = 2;
  }

let default_library = [ mac; mac_commuted; msu ]

let validate cell =
  let leaves = n_leaves cell.pattern in
  if cell.pattern = Any then Error "cell pattern must be an operation"
  else if List.sort compare cell.operand_order <> List.init leaves Fun.id
  then Error "operand_order is not a permutation of the leaves"
  else if Op.arity cell.fused <> leaves then
    Error "fused op arity does not match the leaf count"
  else if cell.delay < 1 then Error "cell delay must be positive"
  else Ok ()
