open Import

(** Pattern matching of library cells on a dataflow graph. *)

type match_ = {
  root : Graph.vertex;  (** the vertex the fused cell replaces *)
  cell : Cell.t;
  operands : Graph.vertex list;
      (** producers feeding the fused cell, already permuted into the
          fused op's operand order *)
  fused_away : Graph.vertex list;
      (** non-root pattern vertices absorbed into the cell; each is
          single-consumer by construction *)
}

val match_at : Graph.t -> Cell.t -> Graph.vertex -> match_ option
(** Structural match of the cell's pattern rooted at the vertex.
    Internal (non-root) pattern vertices must feed only their pattern
    parent — fusing them must not steal a value someone else reads. *)

val all_matches : ?library:Cell.t list -> Graph.t -> match_ list
(** Every match of every library cell, roots in topological order;
    overlapping matches are all reported (selection is the mapper's
    job). Default library: {!Cell.default_library}. *)
