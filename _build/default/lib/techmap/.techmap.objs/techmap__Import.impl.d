lib/techmap/import.ml: Dfg Hard Soft
