lib/techmap/cover.ml: Array Cell Graph Import List Op Topo
