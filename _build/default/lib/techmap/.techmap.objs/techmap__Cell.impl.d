lib/techmap/cell.ml: Fun Import List Op
