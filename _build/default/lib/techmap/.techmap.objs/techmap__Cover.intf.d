lib/techmap/cover.mli: Cell Graph Import
