lib/techmap/cell.mli: Import Op
