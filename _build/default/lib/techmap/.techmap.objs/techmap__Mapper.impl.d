lib/techmap/mapper.ml: Cell Cover Graph Hashtbl Import List Op Schedule Scheduler
