lib/techmap/mapper.mli: Cell Cover Graph Import Resources
