open Import

let default_taps = 8

let graph ?(taps = default_taps) () =
  if taps < 2 || taps mod 2 <> 0 then
    invalid_arg "Fir.graph: taps must be even and at least 2";
  let g = Graph.create () in
  let input name = Graph.add_vertex g ~name (Op.Input name) in
  let binop name op l r =
    let v = Graph.add_vertex g ~name op in
    Graph.add_edge g l v;
    Graph.add_edge g r v;
    v
  in
  let products =
    List.init taps (fun i ->
        let x = input (Printf.sprintf "x%d" i) in
        let c = input (Printf.sprintf "c%d" i) in
        binop (Printf.sprintf "m%d" i) Op.Mul c x)
  in
  (* Pairwise partial sums, then a serial accumulation chain. *)
  let rec pairs acc = function
    | a :: b :: rest ->
      let p = binop (Printf.sprintf "p%d" (List.length acc)) Op.Add a b in
      pairs (p :: acc) rest
    | [] -> List.rev acc
    | [ _ ] -> assert false
  in
  let partials = pairs [] products in
  let sum =
    match partials with
    | [] -> assert false
    | first :: rest ->
      List.fold_left
        (fun acc p ->
          binop (Printf.sprintf "t%d" (Graph.n_vertices g)) Op.Add acc p)
        first rest
  in
  let prev = input "prev" in
  let y = binop "acc" Op.Add sum prev in
  let o = Graph.add_vertex g ~name:"y" (Op.Output "y") in
  Graph.add_edge g y o;
  g

let n_multiplications = default_taps
let n_alu_ops = default_taps

let reference ~coeffs ~samples ~prev =
  if Array.length coeffs <> Array.length samples then
    invalid_arg "Fir.reference: length mismatch";
  let sum = ref prev in
  Array.iteri (fun i c -> sum := !sum + (c * samples.(i))) coeffs;
  !sum
