open Import

let graph () =
  let g = Graph.create () in
  let op i = Graph.add_vertex g ~name:(Printf.sprintf "v%d" i) ~delay:1 Op.Add in
  let v = Array.init 8 (fun i -> if i = 0 then -1 else op i) in
  List.iter
    (fun (a, b) -> Graph.add_edge g v.(a) v.(b))
    [ (1, 2); (2, 5); (3, 4); (4, 6); (5, 7); (6, 7) ];
  g

let v3 g =
  List.find (fun v -> Graph.name g v = "v3") (Graph.vertices g)

let resources =
  Hard.Resources.make [ (Hard.Resources.Alu, 2); (Hard.Resources.Memory, 1) ]
