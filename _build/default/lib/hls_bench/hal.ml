open Import

let graph () =
  let g = Graph.create () in
  let input name = Graph.add_vertex g ~name (Op.Input name) in
  let x = input "x" in
  let y = input "y" in
  let u = input "u" in
  let dx = input "dx" in
  let a = input "a" in
  let three = Graph.add_vertex g ~name:"c3" (Op.Const 3) in
  let binop name op l r =
    let v = Graph.add_vertex g ~name op in
    Graph.add_edge g l v;
    Graph.add_edge g r v;
    v
  in
  let m1 = binop "m1" Op.Mul three x in   (* 3*x *)
  let m2 = binop "m2" Op.Mul u dx in      (* u*dx *)
  let m3 = binop "m3" Op.Mul m1 m2 in     (* 3*x*u*dx *)
  let m4 = binop "m4" Op.Mul three y in   (* 3*y *)
  let m5 = binop "m5" Op.Mul m4 dx in     (* 3*y*dx *)
  let m6 = binop "m6" Op.Mul u dx in      (* u*dx, no CSE in the classic DFG *)
  let s1 = binop "s1" Op.Sub u m3 in      (* u - 3*x*u*dx *)
  let s2 = binop "s2" Op.Sub s1 m5 in     (* ul *)
  let a1 = binop "a1" Op.Add x dx in      (* xl *)
  let a2 = binop "a2" Op.Add y m6 in      (* yl *)
  let c1 = binop "c1" Op.Lt a1 a in       (* xl < a *)
  let output name v =
    let o = Graph.add_vertex g ~name (Op.Output name) in
    Graph.add_edge g v o
  in
  output "xl" a1;
  output "ul" s2;
  output "yl" a2;
  output "c" c1;
  g

let reference ~x ~y ~u ~dx ~a =
  let xl = x + dx in
  let ul = u - (3 * x * u * dx) - (3 * y * dx) in
  let yl = y + (u * dx) in
  let c = if xl < a then 1 else 0 in
  [ ("xl", xl); ("ul", ul); ("yl", yl); ("c", c) ]

let n_multiplications = 6
let n_alu_ops = 5
