open Import

(** IIR — cascade of direct-form-II biquad sections (extension
    benchmark, not in Figure 3; used by the resource-sweep ablation).

    Each section computes
    [w = x - a1*z1 - a2*z2; y = b0*w + b1*z1 + b2*z2]
    (5 multiplications, 4 additions/subtractions). *)

val graph : ?sections:int -> unit -> Graph.t
(** Default 2 sections: 10 multiplications, 8 ALU ops. *)

val n_multiplications : int
val n_alu_ops : int
