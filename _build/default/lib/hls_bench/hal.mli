open Import

(** HAL — the differential-equation solver of Paulin & Knight, the
    canonical HLS benchmark ("HAL" row of Figure 3).

    One iteration of Euler's method for [y'' + 3xy' + 3y = 0]:
    {v
      xl = x + dx
      ul = u - 3*x*u*dx - 3*y*dx
      yl = y + u*dx
      c  = xl < a
    v}
    11 operations: 6 multiplications, 2 subtractions, 2 additions, one
    comparison. With the repository delay model (mul = 2, others = 1)
    the critical path is 6 — the paper's "4+/-,4*" entry. *)

val graph : unit -> Graph.t
(** Fresh instance including [Input]/[Const]/[Output] pseudo-vertices so
    the graph is executable by {!Dfg.Eval}. *)

val reference : x:int -> y:int -> u:int -> dx:int -> a:int ->
  (string * int) list
(** Oracle for the four outputs [("xl", _); ("ul", _); ("yl", _);
    ("c", _)] computed directly in OCaml. *)

val n_multiplications : int
val n_alu_ops : int
