open Import

(** The paper's own running example: the seven-operation dataflow graph
    of Figure 1(a), whose ALAP schedule, spill scenario (c), wire-delay
    scenario (d) and soft schedule (e) drive the whole argument.

    The figure gives the vertex numbering and enough structure to pin
    the graph: two interleaved chains (1→2→5→7 and 3→4→6→7) whose soft
    schedule puts {3,4,6,7} on one unit and {1,2,5} on the other with
    an artificial edge 2→5, yielding 5 states on two units with unit
    delays; spilling vertex 3's value costs one extra state (6), and
    the wire-delay variant stays at 5. *)

val graph : unit -> Graph.t
(** Fresh instance; vertices are named ["v1"] … ["v7"] in the paper's
    numbering and carry unit delays. *)

val v3 : Graph.t -> Graph.vertex
(** The vertex the paper spills (its value feeds vertex 4). *)

val resources : Hard.Resources.t
(** Two universal units (modelled as 2 ALUs) plus a memory port. *)
