open Import

(** DCT — 8-point discrete cosine transform (extension benchmark).

    Decimation-in-frequency butterflies: a first add/sub stage, a
    recursive even half, and a rotated odd half; 8 multiplications and
    24 ALU operations. Wider and shallower than the filters, it
    stresses the ALU-bound regime of the resource sweep. *)

val graph : unit -> Graph.t

val n_multiplications : int
val n_alu_ops : int
