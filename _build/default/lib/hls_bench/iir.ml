open Import

let graph ?(sections = 2) () =
  if sections < 1 then invalid_arg "Iir.graph: need at least one section";
  let g = Graph.create () in
  let input name = Graph.add_vertex g ~name (Op.Input name) in
  let binop name op l r =
    let v = Graph.add_vertex g ~name op in
    Graph.add_edge g l v;
    Graph.add_edge g r v;
    v
  in
  let x0 = input "x" in
  let signal = ref x0 in
  for i = 0 to sections - 1 do
    let p s = Printf.sprintf "s%d%s" i s in
    let z1 = input (p "z1") and z2 = input (p "z2") in
    let a1 = input (p "a1") and a2 = input (p "a2") in
    let b0 = input (p "b0") and b1 = input (p "b1") and b2 = input (p "b2") in
    let m1 = binop (p "m1") Op.Mul a1 z1 in
    let m2 = binop (p "m2") Op.Mul a2 z2 in
    let s1 = binop (p "s1") Op.Sub !signal m1 in
    let w = binop (p "w") Op.Sub s1 m2 in
    let m3 = binop (p "m3") Op.Mul b0 w in
    let m4 = binop (p "m4") Op.Mul b1 z1 in
    let m5 = binop (p "m5") Op.Mul b2 z2 in
    let s2 = binop (p "s2") Op.Add m3 m4 in
    let y = binop (p "y") Op.Add s2 m5 in
    signal := y
  done;
  let o = Graph.add_vertex g ~name:"y" (Op.Output "y") in
  Graph.add_edge g !signal o;
  g

let n_multiplications = 10
let n_alu_ops = 8
