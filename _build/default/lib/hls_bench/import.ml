module Graph = Dfg.Graph
module Op = Dfg.Op
module Paths = Dfg.Paths
