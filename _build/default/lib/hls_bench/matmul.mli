open Import

(** Parametric dense kernels — larger, regular workloads for scaling
    experiments (not part of Figure 3). *)

val matmul : ?n:int -> unit -> Graph.t
(** [n]×[n] matrix multiply, fully unrolled: [n³] multiplications and
    [n²(n-1)] additions (adder chains per dot product). Default
    [n = 3]. @raise Invalid_argument if [n < 1]. *)

val convolution : ?taps:int -> ?outputs:int -> unit -> Graph.t
(** 1-D convolution window: [outputs] results over a [taps]-coefficient
    kernel, [taps·outputs] multiplications. Defaults: 4 taps, 4
    outputs. @raise Invalid_argument on non-positive parameters. *)

val reference_matmul : n:int -> a:int array array -> b:int array array ->
  int array array
(** Oracle for {!matmul}. *)
