lib/hls_bench/dct.mli: Graph Import
