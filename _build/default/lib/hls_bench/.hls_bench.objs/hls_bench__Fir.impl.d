lib/hls_bench/fir.ml: Array Graph Import List Op Printf
