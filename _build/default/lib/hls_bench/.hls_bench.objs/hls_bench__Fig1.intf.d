lib/hls_bench/fig1.mli: Graph Hard Import
