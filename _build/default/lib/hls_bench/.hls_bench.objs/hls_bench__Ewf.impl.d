lib/hls_bench/ewf.ml: Array Graph Import Op Printf
