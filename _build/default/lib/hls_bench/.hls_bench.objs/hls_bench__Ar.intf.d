lib/hls_bench/ar.mli: Graph Import
