lib/hls_bench/suite.ml: Ar Dct Ewf Fir Graph Hal Iir Import List Matmul Op String
