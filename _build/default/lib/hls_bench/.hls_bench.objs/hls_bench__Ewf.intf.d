lib/hls_bench/ewf.mli: Graph Import
