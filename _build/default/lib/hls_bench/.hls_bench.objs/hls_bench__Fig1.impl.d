lib/hls_bench/fig1.ml: Array Graph Hard Import List Op Printf
