lib/hls_bench/iir.mli: Graph Import
