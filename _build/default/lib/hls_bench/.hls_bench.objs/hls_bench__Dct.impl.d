lib/hls_bench/dct.ml: Array Graph Import List Op Printf
