lib/hls_bench/fir.mli: Graph Import
