lib/hls_bench/ar.ml: Array Graph Import Op Printf
