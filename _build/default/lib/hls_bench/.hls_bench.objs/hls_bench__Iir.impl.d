lib/hls_bench/iir.ml: Graph Import Op Printf
