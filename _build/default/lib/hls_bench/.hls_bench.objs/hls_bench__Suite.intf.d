lib/hls_bench/suite.mli: Graph Import
