lib/hls_bench/matmul.mli: Graph Import
