lib/hls_bench/hal.ml: Graph Import Op
