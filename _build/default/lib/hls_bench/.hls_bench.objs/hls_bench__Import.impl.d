lib/hls_bench/import.ml: Dfg
