lib/hls_bench/matmul.ml: Array Graph Import List Op Printf
