lib/hls_bench/hal.mli: Graph Import
