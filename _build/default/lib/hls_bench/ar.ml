open Import

let graph () =
  let g = Graph.create () in
  let input name = Graph.add_vertex g ~name (Op.Input name) in
  let binop name op l r =
    let v = Graph.add_vertex g ~name op in
    Graph.add_edge g l v;
    Graph.add_edge g r v;
    v
  in
  let x1 = input "x1" and x2 = input "x2" in
  let w1 = input "w1" and w2 = input "w2" in
  let coeff = Array.init 16 (fun i -> input (Printf.sprintf "k%d" i)) in
  (* butterfly i: (p, q) -> (p*c + q*c', p*c'' + q*c''') *)
  let butterfly i p q =
    let c j = coeff.((4 * i) + j) in
    let m1 = binop (Printf.sprintf "b%dm1" i) Op.Mul p (c 0) in
    let m2 = binop (Printf.sprintf "b%dm2" i) Op.Mul q (c 1) in
    let m3 = binop (Printf.sprintf "b%dm3" i) Op.Mul p (c 2) in
    let m4 = binop (Printf.sprintf "b%dm4" i) Op.Mul q (c 3) in
    let o1 = binop (Printf.sprintf "b%da1" i) Op.Add m1 m2 in
    let o2 = binop (Printf.sprintf "b%da2" i) Op.Add m3 m4 in
    (o1, o2)
  in
  let p0 = binop "in1" Op.Add x1 w1 in
  let q0 = binop "in2" Op.Add x2 w2 in
  (* chain A: butterflies 0 then 1; chain B: butterflies 2 then 3 *)
  let a1, a2 = butterfly 0 p0 q0 in
  let b1, b2 = butterfly 1 a1 a2 in
  let c1, c2 = butterfly 2 p0 q0 in
  let d1, d2 = butterfly 3 c1 c2 in
  let y1 = binop "out1" Op.Add b1 d1 in
  let y2 = binop "out2" Op.Add b2 d2 in
  let output name v =
    let o = Graph.add_vertex g ~name (Op.Output name) in
    Graph.add_edge g v o
  in
  output "y1" y1;
  output "y2" y2;
  g

let n_multiplications = 16
let n_alu_ops = 12
