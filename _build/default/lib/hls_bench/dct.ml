open Import

let graph () =
  let g = Graph.create () in
  let input name = Graph.add_vertex g ~name (Op.Input name) in
  let binop name op l r =
    let v = Graph.add_vertex g ~name op in
    Graph.add_edge g l v;
    Graph.add_edge g r v;
    v
  in
  let x = Array.init 8 (fun i -> input (Printf.sprintf "x%d" i)) in
  let c = Array.init 8 (fun i -> input (Printf.sprintf "c%d" i)) in
  (* Stage 1: 4 sums and 4 differences across the mirror. *)
  let s = Array.init 4 (fun i ->
      binop (Printf.sprintf "s%d" i) Op.Add x.(i) x.(7 - i))
  in
  let d = Array.init 4 (fun i ->
      binop (Printf.sprintf "d%d" i) Op.Sub x.(i) x.(7 - i))
  in
  (* Even half: 4-point DCT of s. *)
  let e0 = binop "e0" Op.Add s.(0) s.(3) in
  let e1 = binop "e1" Op.Add s.(1) s.(2) in
  let e2 = binop "e2" Op.Sub s.(0) s.(3) in
  let e3 = binop "e3" Op.Sub s.(1) s.(2) in
  let y0 = binop "y0" Op.Add e0 e1 in
  let y4 = binop "y4" Op.Sub e0 e1 in
  let r0 = binop "r0" Op.Mul e2 c.(0) in
  let r1 = binop "r1" Op.Mul e3 c.(1) in
  let y2 = binop "y2" Op.Add r0 r1 in
  let r2 = binop "r2" Op.Mul e2 c.(1) in
  let r3 = binop "r3" Op.Mul e3 c.(0) in
  let y6 = binop "y6" Op.Sub r2 r3 in
  (* Odd half: rotations then combination adds. *)
  let o0 = binop "o0" Op.Mul d.(0) c.(2) in
  let o1 = binop "o1" Op.Mul d.(1) c.(3) in
  let o2 = binop "o2" Op.Mul d.(2) c.(4) in
  let o3 = binop "o3" Op.Mul d.(3) c.(5) in
  let f0 = binop "f0" Op.Add o0 o1 in
  let f1 = binop "f1" Op.Add o2 o3 in
  let f2 = binop "f2" Op.Sub o0 o3 in
  let f3 = binop "f3" Op.Sub o1 o2 in
  let y1 = binop "y1" Op.Add f0 f1 in
  let y5 = binop "y5" Op.Sub f2 f3 in
  let y3 = binop "y3" Op.Add f0 f3 in
  let y7 = binop "y7" Op.Sub f1 f2 in
  let output i v =
    let port = Printf.sprintf "y%d" i in
    (* marker vertex names must stay distinct from the op vertices *)
    let o =
      Graph.add_vertex g ~name:(Printf.sprintf "out%d" i) (Op.Output port)
    in
    Graph.add_edge g v o
  in
  List.iteri output [ y0; y1; y2; y3; y4; y5; y6; y7 ];
  g

let n_multiplications = 8
let n_alu_ops = 24
