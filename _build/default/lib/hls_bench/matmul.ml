open Import

let matmul ?(n = 3) () =
  if n < 1 then invalid_arg "Matmul.matmul: n must be positive";
  let g = Graph.create () in
  let input name = Graph.add_vertex g ~name (Op.Input name) in
  let binop name op l r =
    let v = Graph.add_vertex g ~name op in
    Graph.add_edge g l v;
    Graph.add_edge g r v;
    v
  in
  let a =
    Array.init n (fun i ->
        Array.init n (fun j -> input (Printf.sprintf "a%d%d" i j)))
  in
  let b =
    Array.init n (fun i ->
        Array.init n (fun j -> input (Printf.sprintf "b%d%d" i j)))
  in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let products =
        List.init n (fun k ->
            binop (Printf.sprintf "m%d%d_%d" i j k) Op.Mul a.(i).(k) b.(k).(j))
      in
      let sum =
        match products with
        | [] -> assert false
        | first :: rest ->
          List.fold_left
            (fun acc p ->
              binop (Printf.sprintf "s%d%d_%d" i j (Graph.n_vertices g))
                Op.Add acc p)
            first rest
      in
      let o =
        Graph.add_vertex g
          ~name:(Printf.sprintf "c%d%d" i j)
          (Op.Output (Printf.sprintf "c%d%d" i j))
      in
      Graph.add_edge g sum o
    done
  done;
  g

let convolution ?(taps = 4) ?(outputs = 4) () =
  if taps < 1 || outputs < 1 then
    invalid_arg "Matmul.convolution: parameters must be positive";
  let g = Graph.create () in
  let input name = Graph.add_vertex g ~name (Op.Input name) in
  let binop name op l r =
    let v = Graph.add_vertex g ~name op in
    Graph.add_edge g l v;
    Graph.add_edge g r v;
    v
  in
  let samples =
    Array.init (taps + outputs - 1) (fun i -> input (Printf.sprintf "x%d" i))
  in
  let coeffs = Array.init taps (fun i -> input (Printf.sprintf "k%d" i)) in
  for j = 0 to outputs - 1 do
    let products =
      List.init taps (fun i ->
          binop (Printf.sprintf "m%d_%d" j i) Op.Mul coeffs.(i)
            samples.(j + i))
    in
    let sum =
      match products with
      | [] -> assert false
      | first :: rest ->
        List.fold_left
          (fun acc p ->
            binop (Printf.sprintf "s%d_%d" j (Graph.n_vertices g)) Op.Add acc
              p)
          first rest
    in
    let o =
      Graph.add_vertex g
        ~name:(Printf.sprintf "y%d" j)
        (Op.Output (Printf.sprintf "y%d" j))
    in
    Graph.add_edge g sum o
  done;
  g

let reference_matmul ~n ~a ~b =
  Array.init n (fun i ->
      Array.init n (fun j ->
          let sum = ref 0 in
          for k = 0 to n - 1 do
            sum := !sum + (a.(i).(k) * b.(k).(j))
          done;
          !sum))
