open Import

let graph () =
  let g = Graph.create () in
  let input name = Graph.add_vertex g ~name (Op.Input name) in
  let binop name op l r =
    let v = Graph.add_vertex g ~name op in
    Graph.add_edge g l v;
    Graph.add_edge g r v;
    v
  in
  let vin = input "in" in
  let state = Array.init 8 (fun i -> input (Printf.sprintf "s%d" (i + 1))) in
  let k = Array.init 8 (fun i -> input (Printf.sprintf "k%d" (i + 1))) in
  (* Spine: 13 additions and 2 multiplications, depth 17. *)
  let a1 = binop "a1" Op.Add vin state.(0) in
  let a2 = binop "a2" Op.Add a1 state.(1) in
  let m1 = binop "m1" Op.Mul a2 k.(0) in
  let a3 = binop "a3" Op.Add m1 state.(2) in
  let a4 = binop "a4" Op.Add a3 a1 in
  let a5 = binop "a5" Op.Add a4 state.(3) in
  let m2 = binop "m2" Op.Mul a5 k.(1) in
  let a6 = binop "a6" Op.Add m2 state.(4) in
  let a7 = binop "a7" Op.Add a6 a4 in
  let a8 = binop "a8" Op.Add a7 state.(5) in
  let a9 = binop "a9" Op.Add a8 a6 in
  let a10 = binop "a10" Op.Add a9 state.(6) in
  let a11 = binop "a11" Op.Add a10 a8 in
  let a12 = binop "a12" Op.Add a11 state.(7) in
  let a13 = binop "a13" Op.Add a12 a9 in
  ignore a11;
  (* State updates hanging off the spine: 6 multiplications, 13 adds. *)
  let t1 = binop "t1" Op.Mul a1 k.(2) in
  let u1 = binop "u1" Op.Add t1 state.(0) in
  let t2 = binop "t2" Op.Mul a2 k.(3) in
  let u2 = binop "u2" Op.Add t2 state.(1) in
  let t3 = binop "t3" Op.Mul a3 k.(4) in
  let u3 = binop "u3" Op.Add t3 state.(2) in
  let t4 = binop "t4" Op.Mul a5 k.(5) in
  let u4 = binop "u4" Op.Add t4 state.(3) in
  let t5 = binop "t5" Op.Mul a6 k.(6) in
  let u5 = binop "u5" Op.Add t5 state.(4) in
  let t6 = binop "t6" Op.Mul a8 k.(7) in
  let u6 = binop "u6" Op.Add t6 state.(5) in
  let u7 = binop "u7" Op.Add a10 state.(6) in
  let u8 = binop "u8" Op.Add a12 state.(7) in
  let w1 = binop "w1" Op.Add u1 u2 in
  let w2 = binop "w2" Op.Add u3 u4 in
  let w3 = binop "w3" Op.Add u5 u6 in
  let w4 = binop "w4" Op.Add w1 w2 in
  let w5 = binop "w5" Op.Add w3 w4 in
  let output name v =
    let o = Graph.add_vertex g ~name (Op.Output name) in
    Graph.add_edge g v o
  in
  output "out" a13;
  output "ns_a" w5;
  output "ns_b" u7;
  output "ns_c" u8;
  g

let n_multiplications = 8
let n_alu_ops = 26
