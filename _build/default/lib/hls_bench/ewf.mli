open Import

(** EF — fifth-order elliptic wave filter ("EF" row of Figure 3).

    The classic benchmark has 34 operations (26 additions, 8
    multiplications) and a 17-cycle critical path under the 2-cycle
    multiplier model — exactly the paper's ample-resource entry. The
    published netlist is not reproduced in the paper, so this module
    reconstructs a wave-digital-filter ladder with the same signature:
    34 ops, 26+/8*, diameter 17 (asserted by the test suite). *)

val graph : unit -> Graph.t

val n_multiplications : int
val n_alu_ops : int
