open Import

(** AR — auto-regressive lattice filter ("AR" row of Figure 3).

    The published AR benchmark has 28 operations (16 multiplications,
    12 additions). Its exact netlist is not in the paper; this is the
    standard reconstruction: four coefficient butterflies
    [(p,q) -> (p*c1 + q*c2, p*c3 + q*c4)] arranged as two parallel
    chains of two, with input accumulations and output combinations —
    giving exactly 16*/12+ and a multiply-bounded schedule, the regime
    the Figure 3 row exercises. *)

val graph : unit -> Graph.t

val n_multiplications : int
val n_alu_ops : int
