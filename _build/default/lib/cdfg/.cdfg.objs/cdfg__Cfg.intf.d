lib/cdfg/cfg.mli: Ast Format Import
