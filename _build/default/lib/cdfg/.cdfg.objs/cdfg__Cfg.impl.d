lib/cdfg/cfg.ml: Array Ast Dfg Format Hashtbl Import List Printf Queue
