lib/cdfg/import.ml: Dfg Hard Ir Soft
