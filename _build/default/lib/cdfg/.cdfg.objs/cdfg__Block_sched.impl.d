lib/cdfg/block_sched.ml: Array Ast Cfg Graph Hashtbl Import List Lower Op Schedule Scheduler Ssa
