lib/cdfg/block_sched.mli: Ast Cfg Import Resources
