open Import

(** Control/data-flow graphs: basic blocks of straight-line assignments
    joined by jumps and branches.

    The paper's schedulers "operate within the boundary of the basic
    block, or … the super block"; the front end's default is full
    if-conversion (one super block). This module is the other road:
    keep the control flow, schedule each block separately, and pay a
    control step per transfer — the classic trade-off the multi-block
    ablation measures. Bounded [repeat] loops are unrolled, so the CFG
    is always acyclic. *)

type terminator =
  | Jump of int  (** unconditional transfer to a block id *)
  | Branch of string * int * int
      (** variable tested non-zero, then-target, else-target *)
  | Exit  (** program ends; outputs are read from the variable state *)

type block = {
  id : int;
  body : (string * Ast.expr) list;  (** assignments, in order *)
  terminator : terminator;
}

type t = {
  blocks : block array;  (** indexed by block id; entry is block 0 *)
  inputs : string list;
  outputs : string list;
}

val of_ast : Ast.program -> t
(** Structured translation: [if] becomes a diamond, [repeat] is
    unrolled. @raise Invalid_argument if the program does not
    {!Ast.validate}. *)

val n_blocks : t -> int

val successors : block -> int list

val live_sets : t -> (string list * string list) array
(** Per block: (live-in, live-out) variable sets from backward liveness
    over the acyclic CFG. The entry block's live-in is contained in the
    program inputs (guaranteed by validation). *)

val interp : t -> (string * int) list -> (string * int) list
(** Execute the CFG; the oracle the scheduler-level tests compare
    against {!Interp.run} on the original AST. *)

val pp : Format.formatter -> t -> unit
