open Import

type terminator =
  | Jump of int
  | Branch of string * int * int
  | Exit

type block = {
  id : int;
  body : (string * Ast.expr) list;
  terminator : terminator;
}

type t = {
  blocks : block array;
  inputs : string list;
  outputs : string list;
}

(* Builder: blocks are created innermost-first, so every terminator
   target already exists when a block is allocated. *)
type builder = {
  mutable blocks_rev : block list;
  mutable next_id : int;
  mutable temp : int;
}

let new_block builder body terminator =
  let id = builder.next_id in
  builder.next_id <- id + 1;
  let b = { id; body; terminator } in
  builder.blocks_rev <- b :: builder.blocks_rev;
  b

let fresh_temp builder =
  builder.temp <- builder.temp + 1;
  Printf.sprintf "br$%d" builder.temp

let of_ast (ast : Ast.program) =
  (match Ast.validate ast with
  | Ok () -> ()
  | Error m -> invalid_arg ("Cfg.of_ast: " ^ m));
  let builder = { blocks_rev = []; next_id = 0; temp = 0 } in
  (* Translate a statement list; returns the id of the block that
     execution ENTERS, given the id execution continues to AFTER the
     list. Builds right to left. *)
  let rec translate stmts continue_to =
    match stmts with
    | [] -> continue_to
    | _ ->
      (* split the leading run of simple assignments *)
      let rec split acc = function
        | Ast.Assign (x, e) :: rest -> split ((x, e) :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let straight, rest = split [] stmts in
      (match rest with
      | [] ->
        let b = new_block builder straight (Jump continue_to) in
        b.id
      | Ast.If (cond, then_block, else_block) :: tail ->
        let after = translate tail continue_to in
        let then_entry = translate then_block after in
        let else_entry = translate else_block after in
        let temp = fresh_temp builder in
        let b =
          new_block builder
            (straight @ [ (temp, cond) ])
            (Branch (temp, then_entry, else_entry))
        in
        b.id
      | Ast.Repeat (n, body) :: tail ->
        let after = translate tail continue_to in
        let rec unroll i next =
          if i = 0 then next else unroll (i - 1) (translate body next)
        in
        let loop_entry = unroll n after in
        if straight = [] then loop_entry
        else begin
          let b = new_block builder straight (Jump loop_entry) in
          b.id
        end
      | Ast.Assign _ :: _ -> assert false)
  in
  (* exit block *)
  let exit_block = new_block builder [] Exit in
  let entry = translate ast.Ast.body exit_block.id in
  (* ensure block ids form a dense array with entry remapped to 0 *)
  let blocks = List.rev builder.blocks_rev in
  let n = List.length blocks in
  let remap = Array.make n (-1) in
  (* BFS from the entry to give reachable blocks dense, entry-first ids *)
  let order = ref [] in
  let visited = Array.make n false in
  let queue = Queue.create () in
  Queue.add entry queue;
  visited.(entry) <- true;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    order := id :: !order;
    let b = List.find (fun b -> b.id = id) blocks in
    let targets =
      match b.terminator with
      | Jump t -> [ t ]
      | Branch (_, a, c) -> [ a; c ]
      | Exit -> []
    in
    List.iter
      (fun t ->
        if not visited.(t) then begin
          visited.(t) <- true;
          Queue.add t queue
        end)
      targets
  done;
  let order = List.rev !order in
  List.iteri (fun dense old -> remap.(old) <- dense) order;
  let remap_terminator = function
    | Jump t -> Jump remap.(t)
    | Branch (v, a, b) -> Branch (v, remap.(a), remap.(b))
    | Exit -> Exit
  in
  let final =
    Array.of_list
      (List.map
         (fun old ->
           let b = List.find (fun b -> b.id = old) blocks in
           {
             id = remap.(old);
             body = b.body;
             terminator = remap_terminator b.terminator;
           })
         order)
  in
  { blocks = final; inputs = ast.Ast.inputs; outputs = ast.Ast.outputs }

let n_blocks t = Array.length t.blocks

let successors b =
  match b.terminator with
  | Jump t -> [ t ]
  | Branch (_, a, c) -> if a = c then [ a ] else [ a; c ]
  | Exit -> []

let rec expr_vars = function
  | Ast.Int _ -> []
  | Ast.Var x -> [ x ]
  | Ast.Neg e -> expr_vars e
  | Ast.Binop (_, a, b) -> expr_vars a @ expr_vars b

(* Backward liveness over the acyclic CFG: process blocks in reverse
   of a topological order of the block DAG. *)
let live_sets t =
  let n = n_blocks t in
  let live_in = Array.make n [] in
  let live_out = Array.make n [] in
  let add set xs =
    List.fold_left (fun s x -> if List.mem x s then s else x :: s) set xs
  in
  (* topological order of blocks (entry first) *)
  let indeg = Array.make n 0 in
  Array.iter
    (fun b -> List.iter (fun s -> indeg.(s) <- indeg.(s) + 1) (successors b))
    t.blocks;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order := i :: !order;
    List.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then Queue.add s queue)
      (successors t.blocks.(i))
  done;
  (* !order is reverse topological: sinks first *)
  List.iter
    (fun i ->
      let b = t.blocks.(i) in
      let out =
        match b.terminator with
        | Exit -> t.outputs
        | _ ->
          List.fold_left
            (fun acc s -> add acc live_in.(s))
            [] (successors b)
      in
      let out =
        match b.terminator with
        | Branch (v, _, _) -> add out [ v ]
        | _ -> out
      in
      live_out.(i) <- out;
      (* backward through the body *)
      let live =
        List.fold_left
          (fun live (x, e) ->
            let live = List.filter (fun y -> y <> x) live in
            add live (expr_vars e))
          out (List.rev b.body)
      in
      live_in.(i) <- live)
    !order;
  Array.init n (fun i -> (List.sort compare live_in.(i),
                          List.sort compare live_out.(i)))

let interp t env =
  let values = Hashtbl.create 32 in
  List.iter (fun (x, v) -> Hashtbl.replace values x v) env;
  let rec eval = function
    | Ast.Int n -> n
    | Ast.Var x ->
      (match Hashtbl.find_opt values x with
      | Some v -> v
      | None -> raise Not_found)
    | Ast.Neg e -> -eval e
    | Ast.Binop (op, a, b) ->
      Dfg.Op.eval (Ast.op_of_binop op) [ eval a; eval b ]
  in
  let rec run id guard =
    if guard = 0 then failwith "Cfg.interp: too many transfers (cycle?)";
    let b = t.blocks.(id) in
    List.iter (fun (x, e) -> Hashtbl.replace values x (eval e)) b.body;
    match b.terminator with
    | Jump next -> run next (guard - 1)
    | Branch (v, a, c) ->
      run (if Hashtbl.find values v <> 0 then a else c) (guard - 1)
    | Exit ->
      List.map (fun o -> (o, Hashtbl.find values o)) t.outputs
  in
  run 0 (n_blocks t * 4)

let pp fmt t =
  Format.fprintf fmt "@[<v>cfg: %d blocks" (n_blocks t);
  Array.iter
    (fun b ->
      Format.fprintf fmt "@,  B%d:" b.id;
      List.iter
        (fun (x, e) -> Format.fprintf fmt "@,    %s = %a" x Ast.pp_expr e)
        b.body;
      (match b.terminator with
      | Jump x -> Format.fprintf fmt "@,    jump B%d" x
      | Branch (v, a, c) ->
        Format.fprintf fmt "@,    branch %s ? B%d : B%d" v a c
      | Exit -> Format.fprintf fmt "@,    exit"))
    t.blocks;
  Format.fprintf fmt "@]"
