open Import

(** Per-block threaded scheduling of a CFG and the comparison against
    full if-conversion (one super block).

    Each basic block becomes a little behavioral program whose inputs
    and outputs are its live-in/live-out sets; the threaded scheduler
    runs on its lowered dataflow graph under the shared resource
    configuration. Control transfers cost [control_overhead] cycles
    (the FSM must register the branch condition and switch states). *)

type report = {
  block_csteps : int array;  (** per block id *)
  worst_case_latency : int;
      (** longest entry-to-exit path: block csteps + transfer overhead *)
  n_blocks : int;
  total_operations : int;  (** real ops across all block DFGs *)
}

val run :
  ?control_overhead:int -> resources:Resources.t -> Cfg.t -> report
(** Default [control_overhead = 1]. Every per-block schedule is checked
    against the resources before the report is assembled. *)

type comparison = {
  superblock_csteps : int;  (** if-converted single block *)
  multi_block_worst : int;  (** CFG worst-case path *)
  multi_block_best : int;  (** CFG best-case (shortest) path *)
  blocks : int;
}

val versus_if_conversion :
  ?control_overhead:int -> resources:Resources.t -> Ast.program -> comparison
(** The ablation: the same behavior scheduled as one speculating super
    block (phis as selects) vs as branching basic blocks. *)
