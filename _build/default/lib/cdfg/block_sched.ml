open Import

type report = {
  block_csteps : int array;
  worst_case_latency : int;
  n_blocks : int;
  total_operations : int;
}

(* A block as a standalone behavioral program over its live sets.
   Incoming values are renamed [x$i] (a block may reassign a variable
   it receives, and programs cannot assign to their declared inputs);
   reads before the first local assignment are substituted accordingly.
   Live-out variables the block does not assign are pass-throughs (they
   stay in their registers — no operation here, dropped from the
   outputs). *)
let block_program (cfg : Cfg.t) live (b : Cfg.block) =
  let live_in, live_out = live.(b.Cfg.id) in
  ignore cfg;
  let input_alias x = x ^ "$i" in
  let incoming = Hashtbl.create 8 in
  List.iter (fun x -> Hashtbl.replace incoming x (input_alias x)) live_in;
  let rec subst e =
    match e with
    | Ast.Int _ -> e
    | Ast.Var x ->
      (match Hashtbl.find_opt incoming x with
      | Some alias -> Ast.Var alias
      | None -> e)
    | Ast.Neg inner -> Ast.Neg (subst inner)
    | Ast.Binop (op, l, r) -> Ast.Binop (op, subst l, subst r)
  in
  let body =
    List.map
      (fun (x, e) ->
        let e' = subst e in
        Hashtbl.remove incoming x;
        Ast.Assign (x, e'))
      b.Cfg.body
  in
  let assigned = List.map fst b.Cfg.body in
  let outputs = List.filter (fun x -> List.mem x assigned) live_out in
  {
    Ast.inputs = List.map input_alias live_in;
    outputs;
    body;
  }

let block_graph cfg live b = Lower.run (Ssa.of_ast (block_program cfg live b))

let count_operations g =
  Graph.fold_vertices
    (fun acc v ->
      match Graph.op g v with
      | Op.Input _ | Op.Const _ | Op.Output _ -> acc
      | _ -> acc + 1)
    0 g

let run ?(control_overhead = 1) ~resources cfg =
  let live = Cfg.live_sets cfg in
  let n = Cfg.n_blocks cfg in
  let block_csteps = Array.make n 0 in
  let total_operations = ref 0 in
  Array.iter
    (fun (b : Cfg.block) ->
      let g = block_graph cfg live b in
      total_operations := !total_operations + count_operations g;
      let schedule = Scheduler.run_to_schedule ~resources g in
      (match Schedule.check ~resources schedule with
      | Ok () -> ()
      | Error m -> failwith ("Block_sched.run: invalid block schedule: " ^ m));
      block_csteps.(b.Cfg.id) <- Schedule.length schedule)
    cfg.Cfg.blocks;
  (* longest / path latency over the acyclic block graph *)
  let memo = Array.make n None in
  let rec longest id =
    match memo.(id) with
    | Some v -> v
    | None ->
      let b = cfg.Cfg.blocks.(id) in
      let tail =
        match Cfg.successors b with
        | [] -> 0
        | succs ->
          control_overhead
          + List.fold_left (fun acc s -> max acc (longest s)) 0 succs
      in
      let v = block_csteps.(id) + tail in
      memo.(id) <- Some v;
      v
  in
  {
    block_csteps;
    worst_case_latency = longest 0;
    n_blocks = n;
    total_operations = !total_operations;
  }

type comparison = {
  superblock_csteps : int;
  multi_block_worst : int;
  multi_block_best : int;
  blocks : int;
}

let shortest_path ?(control_overhead = 1) cfg (block_csteps : int array) =
  let n = Cfg.n_blocks cfg in
  let memo = Array.make n None in
  let rec shortest id =
    match memo.(id) with
    | Some v -> v
    | None ->
      let b = cfg.Cfg.blocks.(id) in
      let tail =
        match Cfg.successors b with
        | [] -> 0
        | succs ->
          control_overhead
          + List.fold_left (fun acc s -> min acc (shortest s)) max_int succs
      in
      let v = block_csteps.(id) + tail in
      memo.(id) <- Some v;
      v
  in
  shortest 0

let versus_if_conversion ?(control_overhead = 1) ~resources ast =
  let superblock = Lower.run (Ssa.of_ast ast) in
  let superblock_csteps =
    Schedule.length (Scheduler.run_to_schedule ~resources superblock)
  in
  let cfg = Cfg.of_ast ast in
  let report = run ~control_overhead ~resources cfg in
  {
    superblock_csteps;
    multi_block_worst = report.worst_case_latency;
    multi_block_best =
      shortest_path ~control_overhead cfg report.block_csteps;
    blocks = report.n_blocks;
  }
