open Import

(* Combinational arrival times of a retimed graph: longest zero-weight
   path ending at each vertex, inclusive of its own delay. *)
let arrivals g =
  let dag, map = Seq_graph.combinational_slice g in
  let sdist = Paths.source_distances dag in
  Array.init (Seq_graph.n_vertices g) (fun v -> sdist.(map.(v)))

(* Environment (host) vertices keep lag 0: retiming must not change the
   design's I/O latency, only move the internal registers
   (Leiserson–Saxe's host convention). *)
let is_host g v =
  match Seq_graph.op g v with
  | Op.Input _ | Op.Output _ -> true
  | _ -> false

let feas g ~period =
  let n = Seq_graph.n_vertices g in
  let lag = Array.make n 0 in
  let current = ref g in
  let iterations = max 1 (n - 1) in
  let legal = ref true in
  (try
     for _ = 1 to iterations do
       let delta = arrivals !current in
       Array.iteri
         (fun v d ->
           if d > period && not (is_host g v) then lag.(v) <- lag.(v) + 1)
         delta;
       current := Seq_graph.retime g ~lag
     done
   with Invalid_argument _ -> legal := false);
  if not !legal then None
  else begin
    let final = Seq_graph.retime g ~lag in
    if Seq_graph.combinational_period final <= period then Some lag
    else None
  end

let min_period g =
  let upper = Seq_graph.combinational_period g in
  let lower =
    List.fold_left
      (fun acc v -> max acc (Seq_graph.delay g v))
      1
      (List.init (Seq_graph.n_vertices g) Fun.id)
  in
  let rec search lo hi best =
    if lo > hi then best
    else begin
      let mid = (lo + hi) / 2 in
      match feas g ~period:mid with
      | Some lag -> search lo (mid - 1) (mid, lag)
      | None -> search (mid + 1) hi best
    end
  in
  search lower upper (upper, Array.make (Seq_graph.n_vertices g) 0)

type outcome = {
  lag : int array;
  period_before : int;
  period_after : int;
  csteps_before : int;
  csteps_after : int;
}

let slice_csteps ~resources g =
  let dag, _ = Seq_graph.combinational_slice g in
  Schedule.length (Scheduler.run_to_schedule ~resources dag)

let constrained ~resources g =
  let period_before = Seq_graph.combinational_period g in
  let csteps_before = slice_csteps ~resources g in
  let best_period, _ = min_period g in
  let n = Seq_graph.n_vertices g in
  let identity = Array.make n 0 in
  let best = ref (identity, period_before, csteps_before) in
  for period = best_period to period_before - 1 do
    match feas g ~period with
    | None -> ()
    | Some lag ->
      let retimed = Seq_graph.retime g ~lag in
      let csteps = slice_csteps ~resources retimed in
      let _, best_p, best_c = !best in
      if csteps < best_c || (csteps = best_c && period < best_p) then
        best := (lag, period, csteps)
  done;
  let lag, _target, csteps_after = !best in
  let period_after =
    Seq_graph.combinational_period (Seq_graph.retime g ~lag)
  in
  { lag; period_before; period_after; csteps_before; csteps_after }
