lib/retime/import.ml: Dfg Hard Soft
