lib/retime/retimer.mli: Import Resources Seq_graph
