lib/retime/retimer.ml: Array Fun Import List Op Paths Schedule Scheduler Seq_graph
