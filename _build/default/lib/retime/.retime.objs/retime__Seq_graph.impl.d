lib/retime/seq_graph.ml: Array Dfg Graph Import List Op Paths Printf Queue
