lib/retime/seq_graph.mli: Dfg Import Op
