lib/retime/workloads.mli: Seq_graph
