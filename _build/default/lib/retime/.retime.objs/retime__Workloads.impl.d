lib/retime/workloads.ml: Array Import Op Printf Seq_graph
