open Import

type vertex = int

type node = {
  op : Op.t;
  delay : int;
  name : string;
  mutable out : (vertex * int) list; (* successor, weight *)
  mutable inn : (vertex * int) list;
}

type t = { nodes : node Dfg.Vec.t }

let dummy = { op = Op.Const 0; delay = 0; name = ""; out = []; inn = [] }

let create () = { nodes = Dfg.Vec.create ~dummy () }

let n_vertices g = Dfg.Vec.length g.nodes

let node g v =
  if v < 0 || v >= n_vertices g then
    invalid_arg (Printf.sprintf "Seq_graph: unknown vertex %d" v);
  Dfg.Vec.get g.nodes v

let add_vertex g ?delay ?name op =
  let delay = match delay with Some d -> d | None -> Dfg.Delay.of_op op in
  let id = Dfg.Vec.length g.nodes in
  let name = match name with Some n -> n | None -> Printf.sprintf "v%d" id in
  let _ =
    Dfg.Vec.push g.nodes { op; delay; name; out = []; inn = [] }
  in
  id

let add_edge g u v ~weight =
  if weight < 0 then invalid_arg "Seq_graph.add_edge: negative weight";
  if u = v && weight = 0 then
    invalid_arg "Seq_graph.add_edge: zero-weight self loop";
  let nu = node g u and nv = node g v in
  if List.mem_assoc v nu.out then
    invalid_arg "Seq_graph.add_edge: duplicate edge";
  nu.out <- (v, weight) :: nu.out;
  nv.inn <- (u, weight) :: nv.inn

let op g v = (node g v).op
let delay g v = (node g v).delay
let name g v = (node g v).name
let succs g v = List.rev (node g v).out
let preds g v = List.rev (node g v).inn

let edges g =
  List.concat
    (List.init (n_vertices g) (fun u ->
         List.map (fun (v, w) -> (u, v, w)) (succs g u)))

let total_registers g =
  List.fold_left (fun acc (_, _, w) -> acc + w) 0 (edges g)

(* Kahn over the zero-weight subgraph. *)
let zero_weight_topo g =
  let n = n_vertices g in
  let indeg = Array.make n 0 in
  List.iter (fun (_, v, w) -> if w = 0 then indeg.(v) <- indeg.(v) + 1)
    (edges g);
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order := u :: !order;
    incr count;
    List.iter
      (fun (v, w) ->
        if w = 0 then begin
          indeg.(v) <- indeg.(v) - 1;
          if indeg.(v) = 0 then Queue.add v queue
        end)
      (succs g u)
  done;
  if !count = n then Some (List.rev !order) else None

let well_formed g =
  match zero_weight_topo g with
  | Some _ -> Ok ()
  | None -> Error "zero-weight cycle (a combinational loop)"

let retime g ~lag =
  if Array.length lag <> n_vertices g then
    invalid_arg "Seq_graph.retime: lag vector size mismatch";
  let retimed = create () in
  for v = 0 to n_vertices g - 1 do
    let _ =
      add_vertex retimed ~delay:(delay g v) ~name:(name g v) (op g v)
    in
    ()
  done;
  List.iter
    (fun (u, v, w) ->
      let w' = w + lag.(v) - lag.(u) in
      if w' < 0 then
        invalid_arg
          (Printf.sprintf "Seq_graph.retime: edge %s -> %s gets weight %d"
             (name g u) (name g v) w');
      add_edge retimed u v ~weight:w')
    (edges g);
  retimed

let combinational_slice g =
  (match well_formed g with
  | Ok () -> ()
  | Error m -> invalid_arg ("Seq_graph.combinational_slice: " ^ m));
  let dag = Graph.create () in
  let map = Array.make (n_vertices g) (-1) in
  for v = 0 to n_vertices g - 1 do
    map.(v) <- Graph.add_vertex dag ~delay:(delay g v) ~name:(name g v) (op g v)
  done;
  let register_count = ref 0 in
  List.iter
    (fun (u, v, w) ->
      if w = 0 then Graph.add_edge dag map.(u) map.(v)
      else begin
        (* a registered input: the value arrives from a previous tick *)
        incr register_count;
        let r =
          Graph.add_vertex dag
            ~name:(Printf.sprintf "r%d_%s" !register_count (name g u))
            (Op.Input (Printf.sprintf "r%d" !register_count))
        in
        Graph.add_edge dag r map.(v)
      end)
    (edges g);
  (dag, map)

let combinational_period g =
  let dag, _ = combinational_slice g in
  Paths.diameter dag
