module Graph = Dfg.Graph
module Op = Dfg.Op
module Paths = Dfg.Paths
module Resources = Hard.Resources
module Schedule = Hard.Schedule
module Scheduler = Soft.Scheduler
