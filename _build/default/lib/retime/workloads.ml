open Import

let ring ~ops ~registers =
  if ops < 2 then invalid_arg "Workloads.ring: need at least two ops";
  if registers < 1 then invalid_arg "Workloads.ring: need a register";
  let g = Seq_graph.create () in
  let vertex i =
    let op = if i mod 2 = 0 then Op.Mul else Op.Add in
    Seq_graph.add_vertex g ~name:(Printf.sprintf "o%d" i) op
  in
  let ids = Array.init ops vertex in
  for i = 0 to ops - 2 do
    Seq_graph.add_edge g ids.(i) ids.(i + 1) ~weight:0
  done;
  Seq_graph.add_edge g ids.(ops - 1) ids.(0) ~weight:registers;
  g

let correlator ~taps =
  if taps < 2 then invalid_arg "Workloads.correlator: need two taps";
  let g = Seq_graph.create () in
  let host = Seq_graph.add_vertex g ~name:"host" ~delay:1 Op.Mov in
  (* delay line of comparators, one register between consecutive taps *)
  let comparators =
    Array.init taps (fun i ->
        Seq_graph.add_vertex g ~name:(Printf.sprintf "c%d" i) Op.Eq)
  in
  Seq_graph.add_edge g host comparators.(0) ~weight:1;
  for i = 0 to taps - 2 do
    Seq_graph.add_edge g comparators.(i) comparators.(i + 1) ~weight:1
  done;
  (* zero-weight adder chain combining the taps back to the host *)
  let previous = ref comparators.(taps - 1) in
  for i = taps - 2 downto 0 do
    let a = Seq_graph.add_vertex g ~name:(Printf.sprintf "a%d" i) Op.Add in
    Seq_graph.add_edge g !previous a ~weight:0;
    Seq_graph.add_edge g comparators.(i) a ~weight:0;
    previous := a
  done;
  Seq_graph.add_edge g !previous host ~weight:0;
  g

let pipeline ~stages ~slack_registers =
  if stages < 1 then invalid_arg "Workloads.pipeline: need a stage";
  if slack_registers < 0 then
    invalid_arg "Workloads.pipeline: negative slack";
  let g = Seq_graph.create () in
  let source = Seq_graph.add_vertex g ~name:"src" ~delay:0 (Op.Input "x") in
  let previous = ref source in
  for i = 0 to stages - 1 do
    let m = Seq_graph.add_vertex g ~name:(Printf.sprintf "m%d" i) Op.Mul in
    let a = Seq_graph.add_vertex g ~name:(Printf.sprintf "a%d" i) Op.Add in
    Seq_graph.add_edge g !previous m ~weight:0;
    Seq_graph.add_edge g m a ~weight:0;
    previous := a
  done;
  let sink = Seq_graph.add_vertex g ~name:"snk" ~delay:0 (Op.Output "y") in
  Seq_graph.add_edge g !previous sink ~weight:slack_registers;
  g
