(** Sequential workloads for the retiming experiments. *)

val ring : ops:int -> registers:int -> Seq_graph.t
(** A recurrence ring: [ops] alternating multiply/add operations in a
    cycle carrying [registers] registers bunched on one edge. The
    unconstrained optimum period is the classic bound
    ⌈total delay / registers⌉ (up to the largest single-op delay);
    everything hinges on retiming spreading the registers. *)

val correlator : taps:int -> Seq_graph.t
(** A Leiserson–Saxe-style correlator: a weight-1 tap delay line
    feeding comparators, whose results are combined by a zero-weight
    adder chain back to the host — long combinational adder path,
    registers all sitting in the delay line. *)

val pipeline : stages:int -> slack_registers:int -> Seq_graph.t
(** An acyclic chain of [stages] two-op stages with [slack_registers]
    registers parked on the final edge — the textbook pipelining
    example (retiming pulls them into the chain). *)
