open Import

(** Retiming algorithms.

    [feas]/[min_period] are the classic Leiserson–Saxe relaxation for
    the unconstrained clock period. [constrained] is the paper's
    outlook application: candidate retimings are scored not by the
    combinational path but by the {e resource-constrained schedule
    length} of the retimed body, computed by the threaded scheduler —
    the online scheduler used as an evaluation kernel. *)

val feas : Seq_graph.t -> period:int -> int array option
(** The FEAS relaxation: [Some lag] such that the retimed graph's
    combinational period is at most [period], or [None] if the target
    is infeasible. Vertices carrying [Op.Input]/[Op.Output] are the
    environment and keep lag 0 — retiming never changes I/O latency. *)

val min_period : Seq_graph.t -> int * int array
(** Smallest feasible combinational period and a lag achieving it
    (binary search over {!feas}). *)

type outcome = {
  lag : int array;
  period_before : int;
  period_after : int;
  csteps_before : int;  (** threaded schedule of the original body *)
  csteps_after : int;  (** threaded schedule of the retimed body *)
}

val constrained : resources:Resources.t -> Seq_graph.t -> outcome
(** Scan every feasible period between the unconstrained optimum and
    the original period; schedule each candidate's combinational slice
    under [resources] with the threaded scheduler; keep the retiming
    with the fewest control steps (ties: smaller period). The identity
    retiming is always a candidate, so the result never regresses. *)
