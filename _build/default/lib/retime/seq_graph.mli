open Import

(** Sequential (synchronous) dataflow graphs for retiming.

    A sequential graph is a directed graph whose edges carry a
    register count (weight ≥ 0); cycles are legal as long as every
    cycle carries at least one register (Leiserson–Saxe). Vertices are
    operations with the same delay model as the rest of the repository.
    This is the substrate for the paper's second outlook application:
    {e resource-constrained retiming}. *)

type t
type vertex = int

val create : unit -> t

val add_vertex : t -> ?delay:int -> ?name:string -> Op.t -> vertex

val add_edge : t -> vertex -> vertex -> weight:int -> unit
(** @raise Invalid_argument on a negative weight, an unknown endpoint,
    or a duplicate edge. Self-loops are allowed when [weight > 0]. *)

val n_vertices : t -> int
val op : t -> vertex -> Op.t
val delay : t -> vertex -> int
val name : t -> vertex -> string
val edges : t -> (vertex * vertex * int) list
val succs : t -> vertex -> (vertex * int) list
val preds : t -> vertex -> (vertex * int) list

val well_formed : t -> (unit, string) result
(** Every zero-weight cycle is illegal: the subgraph of zero-weight
    edges must be acyclic. *)

val retime : t -> lag:int array -> t
(** Leiserson–Saxe retiming: edge [(u, v)] gets weight
    [w + lag.(v) - lag.(u)]. @raise Invalid_argument if any retimed
    weight is negative or [lag] has the wrong length. *)

val combinational_slice : t -> Dfg.Graph.t * vertex array
(** The DAG a single clock "tick" computes: every vertex once, with
    the zero-weight edges as dependences; registered inputs appear as
    extra [Op.Input "rN"] vertices so the slice is evaluable and
    schedulable. Returns the DAG and a map from sequential vertex to
    its DAG vertex. @raise Invalid_argument if not {!well_formed}. *)

val combinational_period : t -> int
(** Longest zero-weight path (in cycle delays) — the clock period an
    unconstrained implementation needs. *)

val total_registers : t -> int
