open Import

type t = { graph : Graph.t; starts : int array }

let make graph ~starts =
  if Array.length starts <> Graph.n_vertices graph then
    invalid_arg "Schedule.make: starts array size mismatch";
  Array.iteri
    (fun v s ->
      if s < 0 then
        invalid_arg
          (Printf.sprintf "Schedule.make: negative start %d for vertex %d" s v))
    starts;
  { graph; starts = Array.copy starts }

let graph t = t.graph
let start t v = t.starts.(v)
let finish t v = t.starts.(v) + Graph.delay t.graph v
let starts t = Array.copy t.starts

let length t =
  Graph.fold_vertices (fun acc v -> max acc (finish t v)) 0 t.graph

let usage t cls =
  let cycles = Array.make (max (length t) 1) 0 in
  Graph.iter_vertices
    (fun v ->
      match Resources.class_of_op (Graph.op t.graph v) with
      | Some c when Resources.equal_class c cls ->
        for cycle = start t v to finish t v - 1 do
          cycles.(cycle) <- cycles.(cycle) + 1
        done
      | Some _ | None -> ())
    t.graph;
  cycles

let peak_usage t cls = Array.fold_left max 0 (usage t cls)

let check ?resources t =
  let violation = ref None in
  let record msg = if !violation = None then violation := Some msg in
  Graph.iter_edges
    (fun u v ->
      if finish t u > start t v then
        record
          (Printf.sprintf "precedence violated: %s finishes at %d, %s starts at %d"
             (Graph.name t.graph u) (finish t u) (Graph.name t.graph v)
             (start t v)))
    t.graph;
  (match resources with
  | None -> ()
  | Some r ->
    List.iter
      (fun (cls, available) ->
        let per_cycle = usage t cls in
        Array.iteri
          (fun cycle used ->
            if used > available then
              record
                (Printf.sprintf "resource overflow: %d %s busy at cycle %d, %d available"
                   used (Resources.class_name cls) cycle available))
          per_cycle)
      (Resources.classes r);
    (* Ops requiring a class with zero units are unschedulable. *)
    Graph.iter_vertices
      (fun v ->
        match Resources.class_of_op (Graph.op t.graph v) with
        | Some cls when Resources.count r cls = 0 ->
          record
            (Printf.sprintf "operation %s needs a %s but none is configured"
               (Graph.name t.graph v) (Resources.class_name cls))
        | Some _ | None -> ())
      t.graph);
  match !violation with None -> Ok () | Some msg -> Error msg

let equal a b =
  Array.length a.starts = Array.length b.starts && a.starts = b.starts

let pp fmt t =
  Format.fprintf fmt "@[<v>schedule: %d steps" (length t);
  let by_start =
    List.sort
      (fun a b -> compare (start t a, a) (start t b, b))
      (Graph.vertices t.graph)
  in
  List.iter
    (fun v ->
      Format.fprintf fmt "@,  [%2d..%2d) %s %a" (start t v) (finish t v)
        (Graph.name t.graph v) Op.pp
        (Graph.op t.graph v))
    by_start;
  Format.fprintf fmt "@]"

let gantt t =
  let total = length t in
  let buf = Buffer.create 256 in
  Graph.iter_vertices
    (fun v ->
      Buffer.add_string buf (Printf.sprintf "%-10s |" (Graph.name t.graph v));
      for cycle = 0 to total - 1 do
        let occupied = cycle >= start t v && cycle < finish t v in
        Buffer.add_char buf (if occupied then '#' else '.')
      done;
      Buffer.add_char buf '\n')
    t.graph;
  Buffer.contents buf
