open Import

(** Pipelined functional units, as a graph transform.

    A pipelined multiplier with latency L and initiation interval 1
    accepts a new operation every cycle while results take L cycles.
    Rather than teaching every scheduler about initiation intervals,
    the transform splits each multi-cycle operation of a pipelined
    class into an {e issue} vertex (delay = II, it occupies the unit)
    feeding a {e drain} vertex (delay = L − II, a free pass-through):
    any scheduler of this repository — list, force-directed, exact,
    threaded — then produces a pipelined schedule for free.

    Evaluation semantics are preserved: the issue vertex computes the
    operation, the drain forwards the value ([Op.Wire]). *)

type t = {
  original : Graph.t;
  split : Graph.t;  (** the transformed graph *)
  issue_of : Graph.vertex array;
      (** original vertex -> its issue vertex in [split] *)
  result_of : Graph.vertex array;
      (** original vertex -> the vertex producing its value in [split]
          (the drain for split ops, the issue itself otherwise) *)
}

val split :
  ?pipelined:(Resources.fu_class -> bool) -> ?interval:int -> Graph.t -> t
(** Default: only [Resources.Multiplier] is pipelined, [interval = 1].
    Single-cycle ops and non-pipelined classes pass through untouched.
    @raise Invalid_argument if [interval < 1]. *)

val recover_starts : t -> Schedule.t -> int array
(** Start time of each original op (its issue vertex's start) in a
    schedule of the split graph. Under pipelined-unit semantics the
    producers' {e results} still arrive before consumers start (checked
    by the tests); plain [Schedule.check ~resources] on these starts
    would report unit overlaps, which is the point of pipelining. *)

val csteps :
  scheduler:(Graph.t -> Schedule.t) -> Graph.t -> int
(** Convenience: split, schedule with the given scheduler, report the
    split schedule's length (= the pipelined design's control steps). *)
