open Import

(** As-soon-as-possible scheduling (unlimited resources). *)

val run : Graph.t -> Schedule.t
(** Each vertex starts the moment its last predecessor finishes; the
    schedule length equals the graph diameter. *)
