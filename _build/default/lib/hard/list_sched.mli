open Import

(** Resource-constrained list scheduling — the paper's baseline
    ("traditional list scheduler", Section 2/5).

    Cycle-by-cycle greedy: at each control step the ready operations are
    placed onto free units of their class in priority order. Units are
    not pipelined; multi-cycle operations hold their unit until they
    finish. Operations that consume no unit (constants, inputs, outputs,
    wire-delay pseudo-ops, or anything with zero delay) are placed the
    moment they become ready. *)

type priority = Graph.t -> Graph.vertex -> int
(** Larger = scheduled first among simultaneously-ready ops. Ties break
    on the smaller vertex id, making the scheduler deterministic. *)

val critical_path_priority : priority
(** Sink distance (Definition 1) — the classic list-scheduling heuristic. *)

val mobility_priority : priority
(** Negated slack under the tightest deadline: zero-slack (critical)
    operations first. *)

val run : ?priority:priority -> resources:Resources.t -> Graph.t -> Schedule.t
(** @raise Invalid_argument if some operation's unit class has no units
    in [resources] (the graph is then unschedulable). Default priority
    is {!critical_path_priority}. *)

val dispatch_order :
  ?priority:priority -> resources:Resources.t -> Graph.t -> Graph.vertex list
(** The order in which {!run} dispatches operations — used as the
    paper's meta schedule 4 ("an order similar to those determined by
    the list scheduling heuristics"). *)
