open Import

(** Hard schedules: the traditional total mapping of operations to
    control steps, plus validity checking and reporting.

    Times are in cycles, starting at 0. A vertex with delay [d] started
    at [s] occupies its functional unit during cycles [s .. s+d-1]
    (units are not pipelined, matching the paper's benchmarks where a
    2-cycle multiply blocks its multiplier for both cycles). Zero-delay
    pseudo-ops occupy nothing. *)

type t

val make : Graph.t -> starts:int array -> t
(** @raise Invalid_argument on size mismatch or a negative start. *)

val graph : t -> Graph.t
val start : t -> Graph.vertex -> int
val finish : t -> Graph.vertex -> int
val starts : t -> int array
(** A copy. *)

val length : t -> int
(** Number of control steps = the latest finish time. This is the
    quantity reported in Figure 3. *)

val check : ?resources:Resources.t -> t -> (unit, string) result
(** Precedence feasibility (every edge's producer finishes no later than
    its consumer starts) and, when [resources] is given, per-cycle
    class occupancy within the unit counts. The error string pinpoints
    the first violation. *)

val usage : t -> Resources.fu_class -> int array
(** [usage s cls] has one entry per cycle: how many [cls] units are busy. *)

val peak_usage : t -> Resources.fu_class -> int

val equal : t -> t -> bool
(** Same graph size and identical start times. *)

val pp : Format.formatter -> t -> unit

val gantt : t -> string
(** ASCII chart: one row per vertex, '#' in occupied cycles. *)
