open Import

(** Force-directed scheduling (Paulin & Knight 1989) — the
    timing-constrained baseline cited in Section 2.

    Given a deadline, FDS assigns one operation per iteration to the
    start step that minimises its "force", i.e. that best balances the
    expected per-cycle demand (the distribution graphs) of each unit
    class. Minimising concurrency minimises the number of units needed,
    the classic area-oriented objective. *)

val run : deadline:int -> Graph.t -> Schedule.t
(** @raise Invalid_argument if [deadline] is below the graph diameter.
    The result always meets the deadline and all precedences. *)

val min_units : Schedule.t -> (Resources.fu_class * int) list
(** Peak per-class concurrency of a schedule = the cheapest resource
    configuration that can execute it. *)

(** Shared machinery for the force family (used by {!Fdls}). *)
module Internal : sig
  val frames :
    Graph.t -> deadline:int -> pinned:int option array -> int array * int array
  (** (asap, alap) start windows given the pinned operations.
      @raise Failure if a pin violates a precedence. *)

  val occupancy : lo:int -> hi:int -> d:int -> int -> float
  (** Probability an op with window [lo..hi] and delay [d] occupies the
      given cycle. *)

  val distribution :
    Graph.t -> deadline:int -> asap:int array -> alap:int array ->
    Resources.fu_class -> float array
  (** The class's distribution graph: expected occupancy per cycle. *)

  val self_force :
    Graph.t -> dgs:(Resources.fu_class * float array) list ->
    asap:int array -> alap:int array -> Graph.vertex -> int -> float
  (** Force of pinning the vertex at the given start. *)
end
