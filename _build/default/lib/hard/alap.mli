open Import

(** As-late-as-possible scheduling (unlimited resources). *)

val run : ?deadline:int -> Graph.t -> Schedule.t
(** [deadline] defaults to the graph diameter (tightest feasible).
    @raise Invalid_argument if [deadline] is below the diameter. *)
