open Import

(** Exact resource-constrained scheduling by branch and bound.

    Section 1 contrasts soft scheduling with "global optimization
    approaches … the problem size which these methods can tackle is
    limited"; this module is that expensive comparator, used to audit
    how far the heuristic and threaded schedulers sit from optimal on
    small graphs. The search branches, cycle by cycle, on every subset
    of ready operations that fits the free units, with critical-path and
    work-per-unit lower bounds for pruning. *)

type result = {
  schedule : Schedule.t;
  optimal : bool;  (** false when the node budget was exhausted *)
  nodes_explored : int;
}

val run : ?node_limit:int -> resources:Resources.t -> Graph.t -> result
(** [node_limit] defaults to 2_000_000 search nodes; on exhaustion the
    best incumbent (never worse than list scheduling, which seeds the
    search) is returned with [optimal = false]. *)
