open Import

let run g = Schedule.make g ~starts:(Paths.asap_starts g)
