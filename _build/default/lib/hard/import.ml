(* Short aliases for the dfg substrate, opened by every module here. *)
module Graph = Dfg.Graph
module Op = Dfg.Op
module Paths = Dfg.Paths
module Topo = Dfg.Topo
module Reach = Dfg.Reach
module Delay = Dfg.Delay
module Mutate = Dfg.Mutate
module Eval = Dfg.Eval
module Generate = Dfg.Generate
module Dot = Dfg.Dot
