lib/hard/force_directed.ml: Array Graph Import List Paths Printf Resources Schedule Topo
