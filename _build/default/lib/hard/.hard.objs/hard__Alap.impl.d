lib/hard/alap.ml: Import Paths Schedule
