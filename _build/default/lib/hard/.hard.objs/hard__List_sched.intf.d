lib/hard/list_sched.mli: Graph Import Resources Schedule
