lib/hard/force_directed.mli: Graph Import Resources Schedule
