lib/hard/schedule.ml: Array Buffer Format Graph Import List Op Printf Resources
