lib/hard/resources.mli: Import Op
