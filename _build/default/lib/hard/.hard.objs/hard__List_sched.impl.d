lib/hard/list_sched.ml: Array Graph Hashtbl Import List Paths Printf Resources Schedule
