lib/hard/schedule.mli: Format Graph Import Resources
