lib/hard/exact_bb.ml: Array Graph Import List List_sched Paths Resources Schedule
