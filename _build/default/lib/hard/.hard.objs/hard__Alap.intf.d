lib/hard/alap.mli: Graph Import Schedule
