lib/hard/import.ml: Dfg
