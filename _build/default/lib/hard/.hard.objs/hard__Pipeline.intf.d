lib/hard/pipeline.mli: Graph Import Resources Schedule
