lib/hard/asap.ml: Import Paths Schedule
