lib/hard/exact_bb.mli: Graph Import Resources Schedule
