lib/hard/asap.mli: Graph Import Schedule
