lib/hard/fdls.ml: Array Force_directed Graph Hashtbl Import List Option Paths Printf Resources Schedule
