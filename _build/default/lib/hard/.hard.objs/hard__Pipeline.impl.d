lib/hard/pipeline.ml: Array Graph Import List Op Resources Schedule
