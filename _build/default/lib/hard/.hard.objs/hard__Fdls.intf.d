lib/hard/fdls.mli: Graph Import Resources Schedule
