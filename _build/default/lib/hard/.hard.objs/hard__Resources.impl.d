lib/hard/resources.ml: Import List Op Printf String
