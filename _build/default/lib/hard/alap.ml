open Import

let run ?deadline g =
  let deadline =
    match deadline with Some d -> d | None -> Paths.diameter g
  in
  Schedule.make g ~starts:(Paths.alap_starts g ~deadline)
