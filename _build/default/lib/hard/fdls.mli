open Import

(** Force-directed list scheduling (Paulin & Knight's resource-
    constrained variant): list scheduling where, at each control step,
    the free units are filled with the {e lowest-force} ready
    operations — balancing future demand instead of chasing the
    critical path. Completes the baseline family next to plain list
    scheduling and timing-constrained FDS. *)

val run : resources:Resources.t -> Graph.t -> Schedule.t
(** Searches deadlines upward from the critical path until the force-
    guided fill succeeds; the result is precedence- and resource-valid
    (checked by the test suite). @raise Invalid_argument if some
    operation's class has no units. *)
