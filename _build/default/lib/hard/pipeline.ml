open Import

type t = {
  original : Graph.t;
  split : Graph.t;
  issue_of : Graph.vertex array;
  result_of : Graph.vertex array;
}

let default_pipelined cls = Resources.equal_class cls Resources.Multiplier

let split ?(pipelined = default_pipelined) ?(interval = 1) g =
  if interval < 1 then invalid_arg "Pipeline.split: interval must be >= 1";
  let n = Graph.n_vertices g in
  let split_graph = Graph.create () in
  let issue_of = Array.make n (-1) in
  let result_of = Array.make n (-1) in
  Graph.iter_vertices
    (fun v ->
      let op = Graph.op g v in
      let delay = Graph.delay g v in
      let wants_split =
        delay > interval
        &&
        match Resources.class_of_op op with
        | Some cls -> pipelined cls
        | None -> false
      in
      if wants_split then begin
        let issue =
          Graph.add_vertex split_graph ~delay:interval
            ~name:(Graph.name g v) op
        in
        let drain =
          Graph.add_vertex split_graph ~delay:(delay - interval)
            ~name:(Graph.name g v ^ "_pipe")
            Op.Wire
        in
        Graph.add_edge split_graph issue drain;
        issue_of.(v) <- issue;
        result_of.(v) <- drain
      end
      else begin
        let id =
          Graph.add_vertex split_graph ~delay ~name:(Graph.name g v) op
        in
        issue_of.(v) <- id;
        result_of.(v) <- id
      end)
    g;
  (* consumers read the producer's *result* vertex; walk per consumer
     so operand order survives for non-commutative ops *)
  Graph.iter_vertices
    (fun v ->
      List.iter
        (fun p -> Graph.add_edge split_graph result_of.(p) issue_of.(v))
        (Graph.preds g v))
    g;
  { original = g; split = split_graph; issue_of; result_of }

let recover_starts t schedule =
  ignore t.original;
  Array.map (fun issue -> Schedule.start schedule issue) t.issue_of

let csteps ~scheduler g =
  let t = split g in
  Schedule.length (scheduler t.split)
