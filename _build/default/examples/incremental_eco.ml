(* Engineering changes on a live schedule.

   The paper's conclusion argues soft schedules are "immune to …
   engineering changes": because the scheduling state is a partial
   order maintained by an *online* algorithm, a late design change is
   just more operations fed to the same scheduler — the existing
   decisions stay, the hard schedule is re-extracted at the end.

   Run with: dune exec examples/incremental_eco.exe *)

module Graph = Dfg.Graph
module Op = Dfg.Op

let resources = Hard.Resources.fig3_2alu_2mul
let meta = Soft.Meta.topological

let () =
  (* Start from the shipped FIR filter design, fully scheduled. *)
  let g = Hls_bench.Fir.graph () in
  let state = Soft.Scheduler.run ~meta ~resources g in
  let before = Soft.Threaded_graph.diameter state in
  Printf.printf "FIR as shipped: %d control steps\n\n" before;

  (* ECO 1: marketing wants the output scaled — add y' = y << 1 stage
     in front of the accumulator input 'prev'. *)
  Printf.printf "ECO 1: insert a scaling shift before the accumulator\n";
  let acc =
    List.find (fun v -> Graph.name g v = "acc") (Graph.vertices g)
  in
  let y_sum = List.hd (Graph.preds g acc) in
  let shift_amount = Graph.add_vertex g ~name:"c_shift" (Op.Const 1) in
  let w =
    Refine.Eco.insert_on_edge state ~src:y_sum ~dst:acc ~op:Op.Shl ()
  in
  Graph.add_edge g shift_amount w;
  Soft.Threaded_graph.schedule state shift_amount;
  Printf.printf "  %d -> %d control steps\n\n" before
    (Soft.Threaded_graph.diameter state);

  (* ECO 2: verification wants a parity tap over two partial sums. *)
  Printf.printf "ECO 2: add a debug parity tap (xor of two partials)\n";
  let p0 = List.find (fun v -> Graph.name g v = "p0") (Graph.vertices g) in
  let p1 = List.find (fun v -> Graph.name g v = "p1") (Graph.vertices g) in
  let tap =
    Refine.Eco.add_consumer state ~inputs:[ p0; p1 ] ~op:Op.Xor ~name:"parity"
      ()
  in
  let marker = Graph.add_vertex g ~name:"dbg" (Op.Output "dbg") in
  Graph.add_edge g tap marker;
  Soft.Threaded_graph.schedule state marker;
  Printf.printf "  now %d control steps\n\n"
    (Soft.Threaded_graph.diameter state);

  (* The refined state is still a correct threaded schedule… *)
  (match Soft.Invariant.check_all state with
  | Ok () -> Printf.printf "invariants: all hold after both ECOs\n"
  | Error m -> Printf.printf "INVARIANT VIOLATION: %s\n" m);

  (* …its hard schedule is valid under the same resources… *)
  let schedule = Soft.Threaded_graph.to_schedule state in
  (match Hard.Schedule.check ~resources schedule with
  | Ok () -> Printf.printf "extracted schedule: valid, %d steps\n"
               (Hard.Schedule.length schedule)
  | Error m -> Printf.printf "SCHEDULE INVALID: %s\n" m);

  (* …and the datapath still computes the right values. *)
  let binding = Rtl.Binding.of_state state in
  let env =
    List.filter_map
      (fun v ->
        match Graph.op g v with
        | Op.Input n -> Some (n, (Hashtbl.hash n mod 9) + 1)
        | _ -> None)
      (Graph.vertices g)
  in
  match Rtl.Sim.check_against_eval binding ~env with
  | Ok () -> Printf.printf "post-ECO datapath simulation: correct\n"
  | Error m -> Printf.printf "SIMULATION MISMATCH: %s\n" m
