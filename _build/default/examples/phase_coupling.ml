(* The Figure 1 walk-through: why soft scheduling exists.

   A hard scheduler fixes every operation to a time step; when register
   allocation decides to spill a value, or the floorplanner reveals a
   long wire, the fixed schedule is invalidated and the design process
   iterates. The soft (threaded) scheduler keeps only a partial order,
   so both refinements are absorbed by feeding the new operations to the
   same online algorithm.

   Run with: dune exec examples/phase_coupling.exe *)

module Graph = Dfg.Graph
module Op = Dfg.Op

(* A seven-operation dataflow graph in the spirit of Figure 1(a):
   two interleaved chains sharing the ALUs. Unit delays. *)
let figure1_graph () =
  let g = Graph.create () in
  let op name = Graph.add_vertex g ~name ~delay:1 Op.Add in
  let v1 = op "v1" and v2 = op "v2" and v3 = op "v3" and v4 = op "v4" in
  let v5 = op "v5" and v6 = op "v6" and v7 = op "v7" in
  List.iter
    (fun (a, b) -> Graph.add_edge g a b)
    [ (v1, v2); (v2, v5); (v3, v4); (v4, v6); (v5, v7); (v6, v7) ];
  (g, v3)

let resources =
  Hard.Resources.make
    [ (Hard.Resources.Alu, 2); (Hard.Resources.Memory, 1) ]

let () =
  let g, v3 = figure1_graph () in
  Printf.printf "== Figure 1(a): the dataflow graph ==\n";
  Format.printf "%a@.@." Graph.pp g;

  (* Soft schedule (Figure 1(e)): two threads, one per ALU. *)
  let state = Soft.Scheduler.run ~meta:Soft.Meta.dfs ~resources g in
  Printf.printf "== soft schedule: threads ==\n";
  for k = 0 to Soft.Threaded_graph.n_threads state - 1 do
    Printf.printf "  thread %d: %s\n" k
      (String.concat " -> "
         (List.map (Graph.name g) (Soft.Threaded_graph.thread_members state k)))
  done;
  let before = Soft.Threaded_graph.diameter state in
  Printf.printf "  %d states\n\n" before;

  (* --- Scenario 1: register allocation decides to spill v3 --------- *)
  Printf.printf "== scenario 1: the register allocator spills v3 ==\n";
  let st, ld = Refine.Spill.apply state ~value:v3 in
  Printf.printf "  inserted %s and %s into the live state\n"
    (Graph.name g st) (Graph.name g ld);
  let after_spill = Soft.Threaded_graph.diameter state in
  Printf.printf "  states: %d -> %d (no re-scheduling pass)\n" before
    after_spill;
  (match Soft.Invariant.check_all state with
  | Ok () -> Printf.printf "  all scheduling-state invariants still hold\n\n"
  | Error m -> Printf.printf "  INVARIANT VIOLATION: %s\n\n" m);

  (* --- Scenario 2: the floorplan reveals wire delays --------------- *)
  Printf.printf "== scenario 2: post-floorplan wire delays (HAL, 5 units) ==\n";
  let g2 = Hls_bench.Hal.graph () in
  let state2 =
    Soft.Scheduler.run ~meta:Soft.Meta.dfs
      ~resources:Hard.Resources.fig3_2alu_2mul g2
  in
  let before2 = Soft.Threaded_graph.diameter state2 in
  let floorplan = Refine.Floorplan.place state2 in
  let report =
    Refine.Wire_insert.apply state2 floorplan
      { Refine.Floorplan.cells_per_cycle = 1 }
  in
  Printf.printf "  %d wire-delay vertices inserted (%d extra cycles of wire)\n"
    (List.length report.Refine.Wire_insert.inserted)
    report.Refine.Wire_insert.total_wire_cycles;
  Printf.printf "  states: %d -> %d\n" before2
    (Soft.Threaded_graph.diameter state2);

  (* --- What the alternatives cost ---------------------------------- *)
  Printf.printf "\n== the alternatives, on the EWF benchmark ==\n";
  let cmp =
    Refine.Wire_insert.compare_strategies ~resources:Hard.Resources.fig3_2alu_2mul
      ~meta:Soft.Meta.topological (Hls_bench.Ewf.graph ())
  in
  Printf.printf
    "  ignore wires (invalid in DSM): %d steps\n\
    \  soft refinement:               %d steps\n\
    \  pessimistic estimate:          %d steps\n"
    cmp.Refine.Wire_insert.original_csteps cmp.Refine.Wire_insert.soft_csteps
    cmp.Refine.Wire_insert.pessimistic_csteps
