(* Design-space exploration: the everyday HLS loop this library is for.

   For one behavior (the elliptic wave filter) sweep the architecture —
   unit counts, pipelining, technology mapping — and print the
   area/latency frontier. Every point is a full flow: threaded
   scheduling, binding, register allocation; "area" is a toy cost of
   units + registers + mux inputs.

   Run with: dune exec examples/design_space.exe *)

module Graph = Dfg.Graph
module R = Hard.Resources

type point = {
  label : string;
  csteps : int;
  fus : int;
  registers : int;
  mux_inputs : int;
}

let area p = (p.fus * 12) + (p.registers * 4) + p.mux_inputs

let explore_plain label resources g =
  let state = Soft.Scheduler.run ~resources g in
  let binding = Rtl.Binding.of_state state in
  let netlist = Rtl.Netlist.of_binding binding in
  {
    label;
    csteps = Hard.Schedule.length binding.Rtl.Binding.schedule;
    fus = binding.Rtl.Binding.n_fus;
    registers = binding.Rtl.Binding.n_registers;
    mux_inputs = Rtl.Netlist.n_mux_inputs netlist;
  }

let () =
  let build () = Hls_bench.Ewf.graph () in
  Printf.printf "design-space exploration: elliptic wave filter (34 ops)\n\n";
  Printf.printf "%-22s %7s %5s %5s %5s %7s\n" "architecture" "csteps" "FUs"
    "regs" "mux" "~area";
  let points = ref [] in
  (* unit-count sweep *)
  List.iter
    (fun (alus, muls) ->
      let resources = R.make [ (R.Alu, alus); (R.Multiplier, muls) ] in
      let p =
        explore_plain
          (Printf.sprintf "%d ALU, %d MUL" alus muls)
          resources (build ())
      in
      points := p :: !points)
    [ (1, 1); (2, 1); (2, 2); (3, 2); (3, 3); (4, 4) ];
  (* pipelined multipliers *)
  List.iter
    (fun (alus, muls) ->
      let resources = R.make [ (R.Alu, alus); (R.Multiplier, muls) ] in
      let split = Hard.Pipeline.split (build ()) in
      let p =
        explore_plain
          (Printf.sprintf "%d ALU, %d pipe-MUL" alus muls)
          resources split.Hard.Pipeline.split
      in
      points := p :: !points)
    [ (2, 1); (2, 2) ];
  (* technology-mapped variant *)
  let resources = R.make [ (R.Alu, 2); (R.Multiplier, 2) ] in
  let mapped = Techmap.Mapper.schedule_driven ~resources (build ()) in
  points :=
    explore_plain "2 ALU, 2 MUL + mac" resources mapped.Techmap.Mapper.mapped
    :: !points;
  let sorted =
    List.sort (fun a b -> compare (a.csteps, area a) (b.csteps, area b))
      (List.rev !points)
  in
  List.iter
    (fun p ->
      Printf.printf "%-22s %7d %5d %5d %5d %7d\n" p.label p.csteps p.fus
        p.registers p.mux_inputs (area p))
    sorted;
  (* mark the Pareto frontier *)
  Printf.printf "\nPareto frontier (latency vs ~area):\n";
  let _ =
    List.fold_left
      (fun best p ->
        if area p < best then begin
          Printf.printf "  %-22s csteps=%d area=%d\n" p.label p.csteps (area p);
          area p
        end
        else best)
      max_int sorted
  in
  ()
