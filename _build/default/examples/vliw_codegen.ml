(* VLIW code generation — the paper's other motivating domain.

   Section 1 names "VLIW code generation" alongside HLS as a victim of
   phase coupling: instruction scheduling fights register allocation
   the same way HLS scheduling fights binding. Here the same soft
   scheduler drives a small VLIW target end to end: schedule, bind,
   emit bundles — then let the register allocator demand a spill and
   watch the live state absorb it, with the re-emitted program still
   computing the right values.

   Run with: dune exec examples/vliw_codegen.exe *)

module Graph = Dfg.Graph

let resources = Hard.Resources.fig3_2alu_2mul
let env = [ ("x", 2); ("y", 3); ("u", 4); ("dx", 5); ("a", 10) ]

let () =
  let g = Hls_bench.Hal.graph () in
  Printf.printf "== schedule + bind the HAL kernel ==\n";
  let state = Soft.Scheduler.run ~resources g in
  let binding = Rtl.Binding.of_state state in
  let prog = Vliw.Emit.run binding in
  Printf.printf "%d instructions, %d bundles, %d registers, %.0f%% slot use\n\n"
    (Vliw.Isa.n_instructions prog)
    (Array.length prog.Vliw.Isa.bundles)
    prog.Vliw.Isa.n_registers
    (100.0 *. Vliw.Isa.slot_utilisation prog);
  print_string (Vliw.Asm.print prog);

  Printf.printf "\n== execute the emitted assembly ==\n";
  (match Vliw.Sim.check_against_graph prog g ~env with
  | Ok () -> Printf.printf "assembly reproduces the dataflow semantics\n"
  | Error m -> Printf.printf "MISMATCH: %s\n" m);

  Printf.printf "\n== the register allocator wants m2's value spilled ==\n";
  let m2 = List.find (fun v -> Graph.name g v = "m2") (Graph.vertices g) in
  let _st, _ld = Refine.Spill.apply state ~value:m2 in
  let binding' = Rtl.Binding.of_state state in
  let prog' = Vliw.Emit.run binding' in
  Printf.printf
    "re-emitted after online refinement: %d bundles (was %d), %d mem slot(s)\n"
    (Array.length prog'.Vliw.Isa.bundles)
    (Array.length prog.Vliw.Isa.bundles)
    prog'.Vliw.Isa.n_mem_slots;
  (match Vliw.Sim.check_against_graph prog' g ~env with
  | Ok () -> Printf.printf "spilled program still computes correctly\n"
  | Error m -> Printf.printf "MISMATCH: %s\n" m);

  Printf.printf "\n== assembly round-trips through the parser ==\n";
  let reparsed = Vliw.Asm.parse (Vliw.Asm.print prog') in
  match Vliw.Sim.check_against_graph reparsed g ~env with
  | Ok () -> Printf.printf "parse(print(program)) executes identically\n"
  | Error m -> Printf.printf "MISMATCH: %s\n" m
