(* The conclusion's outlook, end to end: because the threaded scheduler
   is linear and online, it can sit *inside* other algorithms as their
   evaluation kernel. This example runs all three kernel clients the
   repository implements on one design:

     1. meta-schedule search  (the outer loop over feeding orders)
     2. technology mapping    (fuse mac/msu cells when the schedule
                               does not object)
     3. retiming              (move loop registers, scoring candidate
                               periods by actually scheduling the body)

   Run with: dune exec examples/scheduler_as_kernel.exe *)

let resources = Hard.Resources.fig3_2alu_2mul

let () =
  Printf.printf "== 1. meta-schedule search over the elliptic filter ==\n";
  let g = Hls_bench.Ewf.graph () in
  let base = Soft.Scheduler.csteps ~resources g in
  let searched = Soft.Search.hill_climb ~steps:80 ~resources g in
  Printf.printf
    "  topological order: %d steps; after sampling + hill climbing over\n\
    \  %d orders: %d steps\n\n"
    base searched.Soft.Search.evaluated searched.Soft.Search.best_csteps;

  Printf.printf "== 2. schedule-driven technology mapping ==\n";
  List.iter
    (fun name ->
      let g = (Hls_bench.Suite.find name).build () in
      let unmapped = Soft.Scheduler.csteps ~resources g in
      let driven = Techmap.Mapper.schedule_driven ~resources g in
      Printf.printf "  %-4s %d -> %d steps with %d fused cell(s)\n" name
        unmapped
        (Techmap.Mapper.csteps ~resources driven)
        (List.length driven.Techmap.Mapper.accepted))
    [ "HAL"; "EF"; "IIR" ];
  print_newline ();

  Printf.printf "== 3. resource-constrained retiming ==\n";
  List.iter
    (fun (name, g) ->
      let o = Retime.Retimer.constrained ~resources g in
      Printf.printf
        "  %-12s period %d -> %d, scheduled body %d -> %d steps\n" name
        o.Retime.Retimer.period_before o.Retime.Retimer.period_after
        o.Retime.Retimer.csteps_before o.Retime.Retimer.csteps_after)
    [
      ("ring8x2", Retime.Workloads.ring ~ops:8 ~registers:2);
      ("correlator6", Retime.Workloads.correlator ~taps:6);
    ];
  print_newline ();

  Printf.printf
    "Each client calls the same linear online scheduler hundreds of\n\
     times; none of them needed scheduling logic of its own.\n"
