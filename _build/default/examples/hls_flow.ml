(* End-to-end high level synthesis: behavioral source text in, Verilog
   out, with a cycle-accurate simulation against the reference
   interpreter in the middle.

   Run with: dune exec examples/hls_flow.exe *)

let source = {|
# One Euler step of y'' + 3xy' + 3y = 0 (the HAL benchmark), plus a
# saturating guard computed with a conditional (becomes an SSA phi).
input x, y, u, dx, a;
output xl, ul, yl, c;

xl = x + dx;
ul = u - 3*x*u*dx - 3*y*dx;
yl = y + u*dx;
if (xl < a) { c = 1; } else { c = 0; }
|}

let () =
  Printf.printf "== 1. parse ==\n";
  let ast = Ir.Parser.parse source in
  Format.printf "%a@.@." Ir.Ast.pp_program ast;

  Printf.printf "== 2. SSA (note the phi from the conditional) ==\n";
  let ssa = Ir.Ssa.of_ast ast in
  Format.printf "%a@." Ir.Ssa.pp ssa;

  Printf.printf "== 3. lower to a dataflow precedence graph ==\n";
  let g = Ir.Lower.run ssa in
  Printf.printf "%d vertices, %d edges, diameter %d\n\n"
    (Dfg.Graph.n_vertices g) (Dfg.Graph.n_edges g) (Dfg.Paths.diameter g);

  Printf.printf "== 4. threaded scheduling under 2 ALUs + 2 multipliers ==\n";
  let resources = Hard.Resources.fig3_2alu_2mul in
  let state = Soft.Scheduler.run ~resources g in
  let schedule = Soft.Threaded_graph.to_schedule state in
  Printf.printf "%d control steps (valid: %b)\n\n"
    (Hard.Schedule.length schedule)
    (Hard.Schedule.check ~resources schedule = Ok ());

  Printf.printf "== 5. bind: threads are the FU binding; left-edge registers ==\n";
  let binding = Rtl.Binding.of_state state in
  print_string (Rtl.Binding.summary binding);
  print_newline ();

  Printf.printf "== 6. controller ==\n";
  let fsm = Rtl.Fsm.of_binding binding in
  Format.printf "%a@.@." Rtl.Fsm.pp fsm;

  Printf.printf "== 7. simulate vs the interpreter ==\n";
  let env = [ ("x", 2); ("y", 3); ("u", 4); ("dx", 5); ("a", 10) ] in
  let interp = Ir.Interp.run ast env in
  let outputs, _ = Rtl.Sim.run binding ~env in
  List.iter
    (fun (k, v) ->
      Printf.printf "  %s: interpreter=%d datapath=%d %s\n" k
        (List.assoc k interp) v
        (if List.assoc k interp = v then "ok" else "MISMATCH"))
    outputs;
  print_newline ();

  Printf.printf "== 8. Verilog ==\n";
  print_string (Rtl.Verilog.emit ~module_name:"hal_step" binding)
