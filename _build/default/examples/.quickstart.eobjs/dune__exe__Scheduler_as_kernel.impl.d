examples/scheduler_as_kernel.ml: Hard Hls_bench List Printf Retime Soft Techmap
