examples/quickstart.mli:
