examples/vliw_codegen.ml: Array Dfg Hard Hls_bench List Printf Refine Rtl Soft Vliw
