examples/incremental_eco.ml: Dfg Hard Hashtbl Hls_bench List Printf Refine Rtl Soft
