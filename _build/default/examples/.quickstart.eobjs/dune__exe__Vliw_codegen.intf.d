examples/vliw_codegen.mli:
