examples/design_space.ml: Dfg Hard Hls_bench List Printf Rtl Soft Techmap
