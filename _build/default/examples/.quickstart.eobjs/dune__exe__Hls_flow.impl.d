examples/hls_flow.ml: Dfg Format Hard Ir List Printf Rtl Soft
