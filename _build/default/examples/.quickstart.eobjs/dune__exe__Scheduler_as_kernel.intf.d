examples/scheduler_as_kernel.mli:
