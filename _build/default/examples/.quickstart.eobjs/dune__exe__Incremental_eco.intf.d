examples/incremental_eco.mli:
