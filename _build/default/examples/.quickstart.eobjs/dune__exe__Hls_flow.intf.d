examples/hls_flow.mli:
