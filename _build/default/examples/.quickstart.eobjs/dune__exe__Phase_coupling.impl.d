examples/phase_coupling.ml: Dfg Format Hard Hls_bench List Printf Refine Soft String
