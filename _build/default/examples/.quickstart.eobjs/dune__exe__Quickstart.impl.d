examples/quickstart.ml: Dfg Format Hard List Printf Soft String
