examples/phase_coupling.mli:
