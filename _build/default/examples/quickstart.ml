(* Quickstart: build a small dataflow graph, schedule it with the
   threaded (soft) scheduler, and inspect the result.

   Run with: dune exec examples/quickstart.exe *)

module Graph = Dfg.Graph
module Op = Dfg.Op

let () =
  (* y = (a + b) * (c - d); z = y * (a + b)  — a tiny expression DAG. *)
  let g = Graph.create () in
  let input name = Graph.add_vertex g ~name (Op.Input name) in
  let a = input "a" and b = input "b" and c = input "c" and d = input "d" in
  let binop name op l r =
    let v = Graph.add_vertex g ~name op in
    Graph.add_edge g l v;
    Graph.add_edge g r v;
    v
  in
  let sum = binop "sum" Op.Add a b in
  let diff = binop "diff" Op.Sub c d in
  let y = binop "y" Op.Mul sum diff in
  let z = binop "z" Op.Mul y sum in
  List.iter
    (fun (name, v) ->
      let o = Graph.add_vertex g ~name (Op.Output name) in
      Graph.add_edge g v o)
    [ ("y", y); ("z", z) ];

  Printf.printf "== the precedence graph ==\n";
  Format.printf "%a@.@." Graph.pp g;

  (* One ALU, one multiplier. *)
  let resources =
    Hard.Resources.make [ (Hard.Resources.Alu, 1); (Hard.Resources.Multiplier, 1) ]
  in

  (* The soft scheduler builds a *partial order*, not start times. *)
  let state = Soft.Scheduler.run ~resources g in
  Printf.printf "== threads (one per functional unit) ==\n";
  for k = 0 to Soft.Threaded_graph.n_threads state - 1 do
    Printf.printf "  thread %d (%s): %s\n" k
      (Hard.Resources.class_name (Soft.Threaded_graph.thread_class state k))
      (String.concat " -> "
         (List.map (Graph.name g) (Soft.Threaded_graph.thread_members state k)))
  done;
  Printf.printf "  state diameter (critical path): %d cycles\n\n"
    (Soft.Threaded_graph.diameter state);

  (* The hard schedule is extracted only when needed. *)
  let schedule = Soft.Threaded_graph.to_schedule state in
  Printf.printf "== extracted hard schedule ==\n%s\n"
    (Hard.Schedule.gantt schedule);
  Printf.printf "control steps: %d (list scheduling gets %d)\n"
    (Hard.Schedule.length schedule)
    (Hard.Schedule.length (Hard.List_sched.run ~resources g));

  (* And it computes the right thing. *)
  let env = [ ("a", 3); ("b", 4); ("c", 10); ("d", 1) ] in
  List.iter
    (fun (k, v) -> Printf.printf "output %s = %d\n" k v)
    (Dfg.Eval.outputs g env)
